/**
 * @file
 * Server capacity study — the paper's motivating scenario: a
 * transaction-server-like workload whose instruction footprint grows
 * beyond the L1I and BTB reach. As it grows, the decoupled fetcher's
 * FAQ-directed prefetch becomes the dominant benefit (the paper's
 * "server 1 improves 40% with DCF"), while BTB misses expose the
 * decode-resteer feedback loop that ELF's coupled mode shortens.
 *
 * The (footprint × variant) grid runs through the parallel sweep
 * engine; the common bench options apply (--jobs N, --json PATH,
 * --csv PATH, --interval N, --quick, --help).
 *
 *   $ ./server_capacity [--jobs N] [--json results.json]
 */

#include <cstdio>
#include <deque>
#include <vector>

#include "bench_util.hh"
#include "workload/builders.hh"

using namespace elfsim;

int
main(int argc, char **argv)
{
    bench::Options defaults;
    defaults.warmupInsts = 150000;
    defaults.measureInsts = 150000;
    const bench::Options opt =
        bench::parseOptions(argc, argv, defaults);

    std::printf("Instruction-footprint sweep (server-1 shape)\n");
    std::printf("%-10s %9s | %7s %7s %7s | %8s %8s\n", "code KB",
                "DCF IPC", "NoDCF", "L-ELF", "U-ELF", "BTB L0",
                "dec.rst");

    const RunOptions opts = opt.runOptions();

    const FrontendVariant variants[] = {
        FrontendVariant::Dcf, FrontendVariant::NoDcf,
        FrontendVariant::LElf, FrontendVariant::UElf};

    std::deque<Program> programs;
    std::vector<SweepJob> grid;
    for (unsigned funcs : {64u, 256u, 768u, 1536u}) {
        CfgParams p;
        p.numFuncs = funcs;
        p.blocksPerFunc = 5;   // short handlers
        // Main acts as the dispatcher; nested calls stay rare so the
        // walk keeps returning to main and sweeps the whole image
        // (the srv1 recipe — see the catalog notes).
        p.callBlockProb = 0.08;
        p.indirectCallFrac = 0.15;
        p.callSkew = 0.05;     // flat call profile: touch everything
        p.fracLoopBranches = 0.42;
        p.fracPatternBranches = 0.40;
        p.loopPeriodMin = 2;
        p.loopPeriodMax = 6;
        p.dataFootprint = 256 << 10;
        programs.push_back(generateCfg(p, 0x5e41, "server_sweep"));
        for (FrontendVariant v : variants)
            grid.push_back(makeVariantJob(programs.back(), v, opts));
    }

    SweepRunner runner(opt.jobs);
    bench::applyFaultPolicy(runner, opt);
    const std::vector<RunResult> res = runner.run(grid);

    for (std::size_t i = 0; i < programs.size(); ++i) {
        const RunResult &dcf = res[4 * i + 0];
        const RunResult &nod = res[4 * i + 1];
        const RunResult &l = res[4 * i + 2];
        const RunResult &u = res[4 * i + 3];
        std::printf("%-10llu %9.3f | %7.3f %7.3f %7.3f | %7.0f%% "
                    "%8llu\n",
                    (unsigned long long)(programs[i].footprintBytes() /
                                         1024),
                    dcf.ipc, nod.ipc / dcf.ipc, l.ipc / dcf.ipc,
                    u.ipc / dcf.ipc, 100 * dcf.btbHitL0,
                    (unsigned long long)dcf.decodeResteers);
        std::fflush(stdout);
    }

    std::printf("\nAs the footprint grows: the BTB L0 hit rate falls, "
                "decode resteers (the BTB-miss\nfeedback loop) rise, "
                "and NoDCF collapses because it has no FAQ-directed "
                "prefetch.\n");
    bench::exportResults(opt, runner);
    return bench::exitCode(runner);
}
