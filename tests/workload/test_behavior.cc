#include <gtest/gtest.h>

#include "workload/behavior.hh"

using namespace elfsim;

TEST(CondSpec, LoopPeriodShape)
{
    CondSpec c;
    c.kind = CondKind::LoopPeriod;
    c.period = 4;
    // taken, taken, taken, not-taken, repeat
    EXPECT_TRUE(c.outcome(0));
    EXPECT_TRUE(c.outcome(1));
    EXPECT_TRUE(c.outcome(2));
    EXPECT_FALSE(c.outcome(3));
    EXPECT_TRUE(c.outcome(4));
    EXPECT_FALSE(c.outcome(7));
}

TEST(CondSpec, LoopPeriodOneNeverTaken)
{
    CondSpec c;
    c.kind = CondKind::LoopPeriod;
    c.period = 1;
    for (int i = 0; i < 8; ++i)
        EXPECT_FALSE(c.outcome(i));
}

TEST(CondSpec, TakenProbMatchesBias)
{
    CondSpec c;
    c.kind = CondKind::TakenProb;
    c.takenProb = 0.25;
    c.seed = 99;
    int taken = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        taken += c.outcome(i) ? 1 : 0;
    EXPECT_NEAR(taken / double(n), 0.25, 0.02);
}

TEST(CondSpec, TakenProbDeterministic)
{
    CondSpec c;
    c.kind = CondKind::TakenProb;
    c.seed = 5;
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(c.outcome(i), c.outcome(i));
}

TEST(CondSpec, PatternRepeats)
{
    CondSpec c;
    c.kind = CondKind::Pattern;
    c.period = 7;
    c.seed = 3;
    for (int i = 0; i < 70; ++i)
        EXPECT_EQ(c.outcome(i), c.outcome(i % 7));
}

TEST(IndirectSpec, RoundRobinCycles)
{
    IndirectSpec s;
    s.kind = IndirectKind::RoundRobin;
    s.targets = {100, 200, 300};
    EXPECT_EQ(s.target(0), 100u);
    EXPECT_EQ(s.target(1), 200u);
    EXPECT_EQ(s.target(2), 300u);
    EXPECT_EQ(s.target(3), 100u);
}

TEST(IndirectSpec, PhasedSticksForPeriod)
{
    IndirectSpec s;
    s.kind = IndirectKind::Phased;
    s.period = 5;
    s.targets = {10, 20};
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(s.target(i), 10u);
    for (int i = 5; i < 10; ++i)
        EXPECT_EQ(s.target(i), 20u);
}

TEST(IndirectSpec, EmptyTargetsIsInvalid)
{
    IndirectSpec s;
    EXPECT_EQ(s.target(0), invalidAddr);
}

TEST(MemSpec, StrideWalksRegion)
{
    MemSpec m;
    m.kind = MemKind::Stride;
    m.regionBase = 0x1000;
    m.regionSize = 256;
    m.stride = 64;
    EXPECT_EQ(m.address(0), 0x1000u);
    EXPECT_EQ(m.address(1), 0x1040u);
    EXPECT_EQ(m.address(4), 0x1000u); // wrapped
}

TEST(MemSpec, AddressesStayInRegion)
{
    for (MemKind k :
         {MemKind::Stride, MemKind::Random, MemKind::PointerChase}) {
        MemSpec m;
        m.kind = k;
        m.regionBase = 0x4000;
        m.regionSize = 4096;
        m.seed = 17;
        for (int i = 0; i < 1000; ++i) {
            const Addr a = m.address(i);
            ASSERT_GE(a, m.regionBase);
            ASSERT_LT(a, m.regionBase + m.regionSize);
        }
    }
}

TEST(MemSpec, WrongPathAddressesInRegionAndDeterministic)
{
    MemSpec m;
    m.kind = MemKind::Random;
    m.regionBase = 0x8000;
    m.regionSize = 8192;
    m.seed = 23;
    for (int i = 0; i < 500; ++i) {
        const Addr a = m.wrongPathAddress(i);
        ASSERT_GE(a, m.regionBase);
        ASSERT_LT(a, m.regionBase + m.regionSize);
        EXPECT_EQ(a, m.wrongPathAddress(i));
    }
}

TEST(BehaviorSet, IdsIndexCorrectSpecs)
{
    BehaviorSet set;
    CondSpec c;
    c.period = 11;
    c.kind = CondKind::LoopPeriod;
    const auto cid = set.addCond(c);
    MemSpec m;
    m.regionBase = 0x42;
    const auto mid = set.addMem(m);
    IndirectSpec s;
    s.targets = {7};
    const auto iid = set.addIndirect(s);

    EXPECT_EQ(set.cond(cid).period, 11u);
    EXPECT_EQ(set.mem(mid).regionBase, 0x42u);
    EXPECT_EQ(set.indirect(iid).targets[0], 7u);
}
