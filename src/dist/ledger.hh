/**
 * @file
 * The coordinator's crash-safe lease ledger (elfsim-ledger-v1).
 *
 * The ledger file is the resume manifest (elfsim-manifest-v1 JSONL,
 * sim/export.hh) promoted into a scheduling journal: completed-cell
 * lines keep their exact manifest schema — so a ledger IS a valid
 * resume manifest and `--resume` tooling keeps working on it — and
 * two new line kinds record scheduling state:
 *
 *   {"ledger":"elfsim-ledger-v1","event":"lease","index":N,
 *    "key":"...","worker":"w1","lease_seconds":30}
 *   {"ledger":"elfsim-ledger-v1","event":"expire","index":N,
 *    "worker":"w1"}
 *
 * A cell's life cycle in the journal: lease (assigned to a worker)
 * -> either a manifest completion line (done) or an expire line (the
 * worker died or stalled; the cell is schedulable again). Lines are
 * appended and flushed one at a time, so a killed coordinator loses
 * at most the in-flight lines; on restart, readLedger() reports both
 * the completed cells (adoptable, like a manifest resume) and the
 * leases that were still outstanding at the crash (their cells simply
 * re-run — leases grant no exclusivity a dead fleet could hold).
 *
 * Reader robustness matches readManifest(): any malformed, truncated,
 * or alien line is skipped with a warning, never a failure, and the
 * last line about an index wins.
 */

#ifndef ELFSIM_DIST_LEDGER_HH
#define ELFSIM_DIST_LEDGER_HH

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/export.hh"

namespace elfsim {
namespace dist {

/** One scheduling line of the ledger. */
struct LeaseEvent
{
    enum class Kind
    {
        Lease,  ///< cell assigned to a worker
        Expire, ///< assignment abandoned (worker death / stall)
    };

    Kind kind = Kind::Lease;
    std::size_t index = 0;      ///< global grid index
    std::string key;            ///< jobKey (Lease lines only)
    std::string worker;         ///< worker id, e.g. "w0"
    std::uint64_t leaseSeconds = 0; ///< Lease lines only
    /** Duplicate straggler lease (hedged dispatch): the primary lease
     *  stays live, first completion wins, and a losing hedge expires
     *  without requeueing its cell. Serialized as "hedge":true. */
    bool hedge = false;
};

/** Append one scheduling line (compact JSONL; the caller flushes). */
void writeLeaseLine(std::ostream &os, const LeaseEvent &e);

/** Everything a ledger file says, replayed in line order. */
struct LedgerState
{
    /** Completed cells (manifest lines; last line per index wins). */
    std::vector<ManifestEntry> completed;

    /** Leases neither completed nor expired by the end of the file —
     *  the in-flight set at the moment the coordinator stopped. */
    std::vector<LeaseEvent> outstanding;

    std::size_t leaseLines = 0;  ///< lease lines seen
    std::size_t expireLines = 0; ///< expire lines seen
    std::size_t skipped = 0;     ///< malformed / alien lines skipped
};

/** Replay a ledger (or plain manifest) stream. Never throws on bad
 *  lines: they count in `skipped` and are warned about. */
LedgerState readLedger(std::istream &is);

} // namespace dist
} // namespace elfsim

#endif // ELFSIM_DIST_LEDGER_HH
