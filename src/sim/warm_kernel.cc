/**
 * @file
 * Batch functional-warming kernel (Core::warmKernel).
 *
 * Replays a window of the compiled architectural stream through the
 * warm structures — caches, predictors, BTB hierarchy, BTB builder —
 * by iterating the elfsim-trace-v2 warming side tables instead of
 * pulling every instruction through the oracle window:
 *
 *   - the cache pass merges I-line transitions (computed from the
 *     sequential-run list and the configured L0I line size — line
 *     geometry is config-dependent, so transitions are never stored)
 *     with the memory-event list, in stream order, issuing exactly
 *     the instFetch/dataAccess calls the scalar loop would;
 *   - the branch pass walks the branch-event list, catching the BTB
 *     builder up over branch-free gaps with
 *     BtbBuilder::retireSequentialRange, then training
 *     TAGE/ITTAGE/bimodal/RAS, the coupled predictors, and the BTB
 *     exactly like commit of an unpredicted branch.
 *
 * The two passes touch disjoint state (MemHierarchy vs the predictor/
 * BTB group), and each preserves stream order within its group, so
 * splitting them is state-equivalent to the interleaved scalar loop.
 * Work is chunked on the scalar loop's exact ffPollInsts ladder: the
 * ExecContext poll fires at chunk start with the same (cycles,
 * committed) pair the scalar loop would publish, and a poll that
 * throws leaves the chunk unprocessed — i.e. the same state the
 * scalar loop would hold at that poll point. The hard invariant,
 * enforced catalog-wide by test_warm_kernel: serialized warm state
 * after this kernel is byte-identical to the scalar path.
 */

#include <chrono>
#include <mutex>

#include "common/fault.hh"
#include "sim/core.hh"
#include "workload/compiled_trace.hh"

namespace elfsim {

namespace {

std::mutex warmStatsMtx;
WarmStats processWarm;

} // namespace

void
recordWarmStats(const WarmStats &d)
{
    std::lock_guard<std::mutex> lock(warmStatsMtx);
    processWarm.add(d);
}

WarmStats
processWarmStats()
{
    std::lock_guard<std::mutex> lock(warmStatsMtx);
    return processWarm;
}

void
Core::warmKernel(const CompiledTrace &tr, InstCount p0, InstCount kn,
                 Addr &last_line)
{
    ELFSIM_ASSERT(p0 == lastCommitOracleIdx &&
                      p0 + kn <= tr.size(),
                  "warm kernel window outside the compiled prefix");
    const auto wallStart = std::chrono::steady_clock::now();

    const Addr lineBytes = Addr(cfg.mem.l0i.lineBytes);
    const Addr lineMask = ~(lineBytes - 1);
    const Cycle base = coreStats.cycles;
    const SeqNum idx0 = lastCommitOracleIdx;
    ExecContext *exec = currentExecContext();

    // The oracle window may hold instructions generated ahead by the
    // preceding detailed run; the scalar loop would replay them (the
    // compiled stream is the lazy stream, so replay == table replay).
    // Drop them and re-serve from the arrays after the seek below.
    if (!oracle->windowEmpty())
        oracle->retireUpTo(oracle->newest());

    // Side-table cursors, advanced monotonically across chunks.
    InstCount r = tr.runContaining(p0);
    InstCount m = tr.firstMemAtOrAfter(p0);
    InstCount b = tr.firstBranchAtOrAfter(p0);
    const StaticInst *image = prog.instructions().data();

    // PC of the branch pass's next unretired position, tracked
    // incrementally: between branch events the stream is strictly
    // sequential (runs end only at taken *branches*), and each
    // event's recorded next-PC is the PC after it — taken target or
    // fall-through alike. One search seeds it; no lookups after.
    Addr gapNextPC = tr.runPC(r) + instsToBytes(p0 - tr.runPos(r));

    std::uint64_t fetches = 0;
    const InstCount bAtEntry = b;

    InstCount i = 0; // call-relative position (poll ladder)
    while (i < kn) {
        if (exec)
            exec->poll(base + i, idx0 + i);
        const InstCount c1 = std::min(i + ffPollInsts, kn);
        const InstCount A0 = p0 + i;
        const InstCount A1 = p0 + c1;

        // --- cache pass: line transitions merged with mem events ---
        InstCount pos = A0;
        while (pos < A1) {
            const InstCount runEnd = (r + 1 < tr.numRuns())
                                         ? tr.runPos(r + 1)
                                         : tr.size();
            const InstCount segEnd = std::min(runEnd, A1);
            Addr pc = tr.runPC(r) + instsToBytes(pos - tr.runPos(r));
            while (pos < segEnd) {
                // Next position whose fetch leaves the current line.
                InstCount nf;
                const Addr line = pc & lineMask;
                if (line != last_line)
                    nf = pos;
                else
                    nf = pos + (line + lineBytes - pc) / instBytes;
                if (nf >= segEnd) {
                    // No further fetch this segment: drain mem
                    // events up to the segment end and move on.
                    while (m < tr.numMemEvents() &&
                           tr.memPos(m) < segEnd) {
                        mem->dataAccess(tr.memPC(m), tr.memEvAddr(m),
                                        tr.memIsStore(m),
                                        base + (tr.memPos(m) - p0) + 1);
                        ++m;
                    }
                    pos = segEnd;
                    break;
                }
                // Mem events strictly before the fetch position
                // precede it; one *at* the fetch position follows the
                // fetch (scalar order: instFetch, then dataAccess) —
                // it drains on the next iteration or at segment end.
                while (m < tr.numMemEvents() && tr.memPos(m) < nf) {
                    mem->dataAccess(tr.memPC(m), tr.memEvAddr(m),
                                    tr.memIsStore(m),
                                    base + (tr.memPos(m) - p0) + 1);
                    ++m;
                }
                pc += instsToBytes(nf - pos);
                pos = nf;
                mem->instFetch(pc, base + (pos - p0) + 1);
                last_line = pc & lineMask;
                ++fetches;
            }
            if (pos == runEnd) {
                // The instruction ending this run is a taken
                // transfer; the scalar loop resets its line register
                // after every taken branch so the target refetches.
                if (tr.taken(runEnd - 1))
                    last_line = invalidAddr;
                ++r;
            }
        }

        // --- branch pass: builder catch-up + commit training --------
        InstCount gapStart = A0;
        while (b < tr.numBranchEvents() && tr.branchPos(b) < A1) {
            const InstCount bpos = tr.branchPos(b);
            if (bpos > gapStart)
                builder->retireSequentialRange(gapNextPC,
                                               bpos - gapStart);
            const StaticInst &si = image[tr.siIndex(bpos)];
            ELFSIM_ASSERT(si.pc ==
                              gapNextPC + instsToBytes(bpos - gapStart),
                          "branch-pass PC tracking diverged");
            const bool taken = tr.branchTaken(b);
            const Addr target = tr.branchTarget(b);
            bank->commitBranch(si.pc, si.branch, taken, target,
                               TagePrediction{}, IttagePrediction{},
                               historyVisible(si));
            controller->coupledPredictors().trainCommit(
                si.pc, si.branch, taken, target, FetchMode::Coupled);
            if (taken) {
                btbHier->lookup(target);
            }
            builder->retire(si, taken, target);
            ++b;
            gapStart = bpos + 1;
            gapNextPC = target; // recorded next-PC either way
        }
        if (A1 > gapStart) {
            builder->retireSequentialRange(gapNextPC, A1 - gapStart);
            gapNextPC += instsToBytes(A1 - gapStart);
        }

        // Chunk done: publish the scalar loop's end-of-chunk state.
        coreStats.cycles = base + c1;
        lastCommitOracleIdx = idx0 + c1;
        i = c1;
    }

    // Reposition the stream after the warmed window; the next
    // instruction served is idx0 + kn + 1 (from the arrays inside
    // the prefix, resuming the saved generator state past it).
    oracle->seekTo(idx0 + kn + 1);

    warmStats_.kernelInsts += kn;
    warmStats_.branchEvents += b - bAtEntry;
    warmStats_.linesTouched += fetches;
    warmStats_.kernelSeconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wallStart)
            .count();
}

} // namespace elfsim
