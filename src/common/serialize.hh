/**
 * @file
 * Flat byte-buffer serialization for warm-state checkpoints.
 *
 * Components expose `saveState(Serializer &)` / `loadState(Deserializer
 * &)` pairs that write and read fixed-width little-endian scalars into
 * a growable byte vector. The encoding is deliberately dumb — no field
 * tags, no varints — because a checkpoint is only ever read back by
 * the exact binary layout that wrote it: the artifact key (see
 * workload/checkpoint_store.hh) hashes the format version along with
 * the full configuration, so any layout change changes the key and a
 * stale payload is never parsed.
 *
 * Deserializer throws ParseError on underrun or on a failed bounds
 * check, which callers treat as "checkpoint unusable, fall back to
 * fast-forward" — never as a failed simulation.
 */

#ifndef ELFSIM_COMMON_SERIALIZE_HH
#define ELFSIM_COMMON_SERIALIZE_HH

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/error.hh"

namespace elfsim {

/** Append-only little-endian byte-buffer writer. */
class Serializer
{
  public:
    void
    u8(std::uint8_t v)
    {
        buf.push_back(v);
    }

    void
    u16(std::uint16_t v)
    {
        appendLe(v, 2);
    }

    void
    u32(std::uint32_t v)
    {
        appendLe(v, 4);
    }

    void
    u64(std::uint64_t v)
    {
        appendLe(v, 8);
    }

    void
    f64(double v)
    {
        std::uint64_t bits;
        std::memcpy(&bits, &v, sizeof(bits));
        u64(bits);
    }

    void
    boolean(bool v)
    {
        u8(v ? 1 : 0);
    }

    void
    bytes(const void *data, std::size_t len)
    {
        const auto *p = static_cast<const std::uint8_t *>(data);
        buf.insert(buf.end(), p, p + len);
    }

    /** Length-prefixed u64 vector. */
    void
    u64Vec(const std::vector<std::uint64_t> &v)
    {
        u64(v.size());
        for (std::uint64_t x : v)
            u64(x);
    }

    const std::vector<std::uint8_t> &data() const { return buf; }
    std::size_t size() const { return buf.size(); }

  private:
    void
    appendLe(std::uint64_t v, unsigned n)
    {
        for (unsigned i = 0; i < n; ++i)
            buf.push_back(std::uint8_t(v >> (8 * i)));
    }

    std::vector<std::uint8_t> buf;
};

/** Sequential reader over a serialized byte buffer. */
class Deserializer
{
  public:
    Deserializer(const std::uint8_t *data, std::size_t len)
        : ptr(data), end(data + len)
    {}

    explicit Deserializer(const std::vector<std::uint8_t> &v)
        : Deserializer(v.data(), v.size())
    {}

    std::uint8_t
    u8()
    {
        need(1);
        return *ptr++;
    }

    std::uint16_t
    u16()
    {
        return std::uint16_t(readLe(2));
    }

    std::uint32_t
    u32()
    {
        return std::uint32_t(readLe(4));
    }

    std::uint64_t
    u64()
    {
        return readLe(8);
    }

    double
    f64()
    {
        std::uint64_t bits = u64();
        double v;
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }

    bool
    boolean()
    {
        std::uint8_t v = u8();
        if (v > 1)
            throw ParseError("checkpoint: bad boolean byte");
        return v != 0;
    }

    void
    bytes(void *out, std::size_t len)
    {
        need(len);
        std::memcpy(out, ptr, len);
        ptr += len;
    }

    /** Length-prefixed u64 vector; @a max_len guards absurd sizes. */
    std::vector<std::uint64_t>
    u64Vec(std::size_t max_len = std::size_t(1) << 32)
    {
        std::uint64_t n = u64();
        if (n > max_len)
            throw ParseError("checkpoint: vector length out of range");
        std::vector<std::uint64_t> v;
        v.reserve(std::size_t(n));
        for (std::uint64_t i = 0; i < n; ++i)
            v.push_back(u64());
        return v;
    }

    std::size_t remaining() const { return std::size_t(end - ptr); }

    /** Loads must consume the payload exactly; anything else means
     *  the layout drifted from the writer's. */
    void
    expectEnd() const
    {
        if (ptr != end)
            throw ParseError("checkpoint: trailing bytes after load");
    }

  private:
    void
    need(std::size_t n) const
    {
        if (std::size_t(end - ptr) < n)
            throw ParseError("checkpoint: payload truncated");
    }

    std::uint64_t
    readLe(unsigned n)
    {
        need(n);
        std::uint64_t v = 0;
        for (unsigned i = 0; i < n; ++i)
            v |= std::uint64_t(ptr[i]) << (8 * i);
        ptr += n;
        return v;
    }

    const std::uint8_t *ptr;
    const std::uint8_t *end;
};

} // namespace elfsim

#endif // ELFSIM_COMMON_SERIALIZE_HH
