/**
 * @file
 * PC-indexed stride prefetcher ("Advanced Stride-based prefetch" in
 * the paper's Table II memory configuration).
 */

#ifndef ELFSIM_CACHE_PREFETCH_HH
#define ELFSIM_CACHE_PREFETCH_HH

#include <cstdint>
#include <vector>

#include "cache/cache.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace elfsim {

/** Stride prefetcher parameters. */
struct StridePrefetcherParams
{
    unsigned tableEntries = 256;  ///< direct-mapped PC table
    unsigned degree = 2;          ///< prefetches issued per trigger
    unsigned distance = 2;        ///< lead distance in strides
    unsigned confThreshold = 2;   ///< confidence needed to issue
};

/**
 * Classic PC-based stride prefetcher: learns (last address, stride,
 * confidence) per load/store PC and prefetches ahead once confident.
 */
class StridePrefetcher
{
  public:
    StridePrefetcher(const StridePrefetcherParams &params, Cache &target);

    /** Observe a demand access from @a pc to @a addr; maybe prefetch. */
    void train(Addr pc, Addr addr, Cycle now);

    /** Reset learned state. */
    void reset();

    const stats::StatGroup &statGroup() const { return statsGroup; }
    std::uint64_t issued() const { return issuedCount.raw(); }

    /** Serialize the learned stride table and counters. */
    void saveState(Serializer &s) const;
    void loadState(Deserializer &d);

  private:
    struct Entry
    {
        Addr tag = invalidAddr;
        Addr lastAddr = 0;
        std::int64_t stride = 0;
        unsigned conf = 0;
    };

    StridePrefetcherParams params;
    Cache &target;
    std::vector<Entry> table;
    stats::StatGroup statsGroup;
    stats::Counter &issuedCount;
    stats::Counter &trainCount;
};

} // namespace elfsim

#endif // ELFSIM_CACHE_PREFETCH_HH
