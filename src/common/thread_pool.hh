/**
 * @file
 * Work-stealing thread pool.
 *
 * Each worker owns a deque: the owner pushes and pops at the back
 * (LIFO, cache-friendly), idle workers steal from the front of a
 * victim's deque (FIFO, oldest work first). Submission round-robins
 * across the worker deques so a sweep's jobs start evenly spread and
 * stealing only happens when the load is imbalanced.
 *
 * The pool makes no ordering promises — callers that need
 * deterministic output (the sweep engine) index results by submission
 * slot rather than completion order.
 */

#ifndef ELFSIM_COMMON_THREAD_POOL_HH
#define ELFSIM_COMMON_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace elfsim {

/** Fixed-size work-stealing thread pool. */
class ThreadPool
{
  public:
    /** Spawn @a threads workers; 0 means one per hardware thread. */
    explicit ThreadPool(unsigned threads = 0);

    /** Waits for all submitted tasks, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue a task. Safe to call from any thread. */
    void submit(std::function<void()> task);

    /**
     * Block until every submitted task has finished. If any task
     * threw, the first captured exception is rethrown here (a
     * backstop — the sweep engine catches per-job errors itself, so
     * an exception reaching the pool means a bug or a strict-mode
     * sweep); the remaining tasks still run to completion first.
     */
    void wait();

    unsigned threadCount() const { return nThreads; }

    /** Hardware concurrency, never less than 1. */
    static unsigned hardwareThreads();

  private:
    /** One worker's deque; the mutex only guards this deque. */
    struct Worker
    {
        std::mutex mtx;
        std::deque<std::function<void()>> tasks;
    };

    /** Pop own work (back) or steal from a victim (front). */
    bool grabTask(unsigned self, std::function<void()> &out);
    void workerLoop(unsigned self);

    // Set before any worker spawns and immutable afterwards: workers
    // read these concurrently with the constructor's emplace loop.
    unsigned nThreads = 0;
    std::vector<std::unique_ptr<Worker>> workers;

    std::vector<std::thread> threads;

    // Pool-wide bookkeeping; poolMtx also serializes sleep/wake so
    // submit() cannot slip a notification past a worker checking the
    // predicate.
    std::mutex poolMtx;
    std::condition_variable workCv; ///< workers sleep here
    std::condition_variable idleCv; ///< wait() sleeps here
    std::size_t queued = 0;         ///< submitted, not yet started
    std::size_t unfinished = 0;     ///< submitted, not yet completed
    bool stopping = false;
    unsigned nextWorker = 0;        ///< round-robin submission cursor
    std::exception_ptr firstError;  ///< first task exception (backstop)
};

} // namespace elfsim

#endif // ELFSIM_COMMON_THREAD_POOL_HH
