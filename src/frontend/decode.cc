#include "frontend/decode.hh"

#include "common/logging.hh"

namespace elfsim {

DecodeStage::DecodeStage(unsigned width, PredictorBank &bank)
    : width(width), bank(bank)
{
}

bool
DecodeStage::recoverMisfetch(Cycle now, DynInst &di, Redirect &resteer)
{
    const BranchKind kind = di.si->branch;
    bool doResteer = false;
    Cycle extra = 0;

    switch (kind) {
      case BranchKind::UncondDirect:
      case BranchKind::DirectCall:
        // The decoded target is in the instruction word.
        di.hasPrediction = true;
        di.predTaken = true;
        di.predTarget = di.si->directTarget;
        doResteer = true;
        ++st.resteerUncond;
        break;
      case BranchKind::Return: {
        // Explicit stall while the DCF RAS is accessed (paper III-C).
        const Addr t = bank.peekReturn();
        if (t != invalidAddr) {
            di.hasPrediction = true;
            di.predTaken = true;
            di.predTarget = t;
            doResteer = true;
            extra = 1;
            ++st.resteerReturn;
        }
        break;
      }
      case BranchKind::CondDirect: {
        // Predict with the current speculative history to make the
        // resteer decision — but do NOT keep this prediction for
        // training: the DCF's history has run ahead of this
        // instruction, so its indices are not reproducible. Commit
        // trains through the architectural history instead
        // (di.tagePred stays invalid).
        const TagePrediction tp = bank.predictCond(di.pc());
        di.hasPrediction = true;
        di.predTaken = tp.taken;
        di.predTarget =
            tp.taken ? di.si->directTarget : di.si->nextPC();
        // Only a predicted-taken conditional diverges from the
        // sequential stream the fetcher is already on.
        if (tp.taken) {
            doResteer = true;
            ++st.resteerCond;
        }
        break;
      }
      case BranchKind::IndirectJump:
      case BranchKind::IndirectCall: {
        // As for conditionals: predict for the resteer only; train
        // via the architectural history at commit.
        const Addr l0 = bank.predictIndirectL0(di.pc());
        const IttagePrediction ip = bank.predictIndirect(di.pc());
        Addr t = l0;
        if (t == invalidAddr) {
            t = ip.target;
            extra = 2; // the 3-cycle ITTAGE vs the 1-cycle BTC
        }
        if (t != invalidAddr) {
            di.hasPrediction = true;
            di.predTaken = true;
            di.predTarget = t;
            doResteer = true;
            ++st.resteerIndirect;
        }
        // Otherwise: wait for execution to resolve the target.
        break;
      }
      default:
        break;
    }

    // Re-derive resolution/misprediction with the new prediction.
    if (di.wrongPath) {
        di.taken = di.predTaken;
        di.actualNext = di.predTarget;
        di.mispredict = false;
    } else {
        di.mispredict = (di.taken != di.predTaken) ||
                        (di.taken && di.actualNext != di.predTarget);
    }

    if (!doResteer) {
        // No redirect. The branch stays invisible to the DCF's
        // speculative history: only BTB-tracked branches contribute
        // history bits, and this one has no slot yet — the
        // architectural history applies the same filter at commit, so
        // prediction- and training-time indices agree.
        return false;
    }

    resteer.kind = RedirectKind::DecodeResteer;
    resteer.survivorSeq = di.seq;
    resteer.targetPC = di.predTarget;
    resteer.oracleCursor = di.wrongPath ? 0 : di.oracleIdx + 1;
    resteer.atCycle = now + extra;
    ++st.resteers;
    return true;
}

unsigned
DecodeStage::tick(Cycle now, BoundedQueue<DynInst> &in,
                  FetchBundle &out, Redirect &resteer)
{
    unsigned decoded = 0;
    while (decoded < width && !in.empty() &&
           in.front().readyAt <= now) {
        DynInst di = in.pop();
        ++decoded;
        ++st.insts;

        bool resteered = false;
        if (di.isBranch() && !di.hasPrediction &&
            di.mode == FetchMode::Decoupled) {
            resteered = recoverMisfetch(now, di, resteer);
        }

        if (observer)
            observer->onDecoded(di);
        out.push_back(std::move(di));

        if (resteered)
            break; // younger instructions are being squashed
    }
    return decoded;
}

} // namespace elfsim
