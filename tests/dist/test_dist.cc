/**
 * @file
 * Distributed-sweep tests: wire-protocol round trips, the crash-safe
 * lease ledger on adversarial JSONL, SweepRunner's subset-merge
 * byte-identity (the invariant the whole layer rests on), the worker
 * endpoints of an in-process service, and full coordinator runs.
 *
 * The scheduling-level cases (kill -9 reassignment, one compile per
 * fleet) drive real `elfsimd --worker` subprocesses found via
 * $ELFSIM_BENCH_DIR — an in-process worker would share this process's
 * TraceCache singleton and fake the compile accounting.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <signal.h>
#include <sys/types.h>

#include "common/error.hh"
#include "common/fault.hh"
#include "common/json.hh"
#include "dist/coordinator.hh"
#include "dist/ledger.hh"
#include "dist/spawn.hh"
#include "dist/wire.hh"
#include "service/daemon.hh"
#include "service/http.hh"
#include "sim/export.hh"
#include "sim/sweep.hh"
#include "sim/sweep_spec.hh"
#include "workload/trace_cache.hh"

namespace elfsim {
namespace {

/**
 * A tiny but real grid: micro workloads crossed with two frontend
 * variants. Distinct tests use distinct generator args so the
 * process-wide TraceCache memo of earlier tests never masks a
 * compile this test expected to observe.
 */
SweepSpec
distSpec(const std::string &name,
         const std::vector<std::vector<double>> &microArgs,
         std::uint64_t warmup, std::uint64_t measure)
{
    SweepSpec spec;
    spec.name = name;
    spec.jobs = 1;
    spec.baseSeed = 7;
    spec.run.warmupInsts = warmup;
    spec.run.measureInsts = measure;
    SweepGroup g;
    for (const auto &args : microArgs)
        g.workloads.push_back(
            WorkloadSelector::micro("random_branch_loop", args));
    g.configs.emplace_back(FrontendVariant::Dcf);
    g.configs.emplace_back(FrontendVariant::UElf);
    spec.groups.push_back(std::move(g));
    return spec;
}

/** The single-process answer: the bytes every distributed run of the
 *  same spec must reproduce exactly. */
std::string
referenceBytes(const SweepSpec &spec)
{
    ExpandedSweep ex = expandSweep(spec);
    SweepRunner runner(1);
    runner.setBaseSeed(spec.baseSeed);
    const std::vector<RunResult> results = runner.run(ex.jobs);
    std::ostringstream os;
    writeResultsJson(os, results);
    return os.str();
}

std::string
mergedBytes(const std::vector<RunResult> &results)
{
    std::ostringstream os;
    writeResultsJson(os, results);
    return os.str();
}

std::vector<std::string>
splitLines(const std::string &text)
{
    std::vector<std::string> lines;
    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line))
        if (!line.empty())
            lines.push_back(line);
    return lines;
}

std::string
tmpPath(const std::string &name)
{
    return ::testing::TempDir() + "/" + name;
}

/** elfsimd binary path, or "" when the env var is missing (running
 *  the test binary by hand outside ctest). */
std::string
workerBinary()
{
    const char *dir = std::getenv("ELFSIM_BENCH_DIR");
    return dir ? std::string(dir) + "/elfsimd" : std::string();
}

ManifestEntry
dummyEntry(std::size_t index, const std::string &key)
{
    ManifestEntry e;
    e.index = index;
    e.key = key;
    e.result.workload = "w" + std::to_string(index);
    e.result.variant = "DCF";
    return e;
}

std::string
manifestLine(std::size_t index, const std::string &key)
{
    std::ostringstream os;
    writeManifestLine(os, dummyEntry(index, key));
    return os.str();
}

std::string
leaseLine(std::size_t index, const std::string &key,
          const std::string &worker)
{
    dist::LeaseEvent e;
    e.kind = dist::LeaseEvent::Kind::Lease;
    e.index = index;
    e.key = key;
    e.worker = worker;
    e.leaseSeconds = 30;
    std::ostringstream os;
    dist::writeLeaseLine(os, e);
    return os.str();
}

std::string
expireLine(std::size_t index, const std::string &worker)
{
    dist::LeaseEvent e;
    e.kind = dist::LeaseEvent::Kind::Expire;
    e.index = index;
    e.worker = worker;
    std::ostringstream os;
    dist::writeLeaseLine(os, e);
    return os.str();
}

// ---------------------------------------------------------------- wire

TEST(DistWire, ShardRequestRoundTripsThroughCanonicalSpecText)
{
    const SweepSpec spec = distSpec("wire", {{8, 0.5}, {4, 0.9}},
                                    2000, 4000);
    const std::vector<std::size_t> cells = {3, 0, 2};
    const std::string body = dist::writeShardRequest(spec, cells);

    const dist::ShardRequest req = dist::parseShardRequest(body);
    EXPECT_EQ(req.cells, cells);

    // The embedded spec survives canonically: re-serializing the
    // parsed spec reproduces the exact text the worker's expansion
    // memo keys on.
    std::ostringstream sent, parsed;
    writeSweepSpec(sent, spec);
    writeSweepSpec(parsed, req.spec);
    EXPECT_EQ(parsed.str(), sent.str());

    EXPECT_THROW(dist::parseShardRequest("{\"schema\":\"nope\"}"),
                 SimError);
}

TEST(DistWire, StreamLinesParseBackToTheirKinds)
{
    const dist::ShardLine hb = dist::parseShardLine(
        dist::heartbeatLine().substr(0, dist::heartbeatLine().size() - 1));
    EXPECT_EQ(hb.kind, dist::ShardLine::Kind::Heartbeat);

    std::string done = dist::doneLine(5);
    done.pop_back(); // strip '\n'
    const dist::ShardLine dn = dist::parseShardLine(done);
    EXPECT_EQ(dn.kind, dist::ShardLine::Kind::Done);
    EXPECT_EQ(dn.cells, 5u);

    std::string res = manifestLine(3, "key3");
    res.pop_back();
    const dist::ShardLine rl = dist::parseShardLine(res);
    EXPECT_EQ(rl.kind, dist::ShardLine::Kind::Result);
    EXPECT_EQ(rl.entry.index, 3u);
    EXPECT_EQ(rl.entry.key, "key3");
    EXPECT_EQ(rl.entry.result.workload, "w3");

    EXPECT_THROW(dist::parseShardLine("{\"shard\":\"elfsim-shard-v1\","
                                      "\"event\":\"frobnicate\"}"),
                 SimError);
    EXPECT_THROW(dist::parseShardLine("not json at all"), SimError);
}

// -------------------------------------------------------------- ledger

TEST(DistLedger, LeaseLifecycleReplaysToCompletedAndOutstanding)
{
    std::ostringstream os;
    os << leaseLine(0, "k0", "w0");   // leased ...
    os << manifestLine(0, "k0");      // ... and completed
    os << leaseLine(1, "k1", "w0");   // leased ...
    os << expireLine(1, "w0");        // ... worker died
    os << leaseLine(1, "k1", "w1");   // re-leased, in flight at EOF
    os << leaseLine(2, "k2", "w1");   // in flight at EOF

    std::istringstream is(os.str());
    const dist::LedgerState state = dist::readLedger(is);
    ASSERT_EQ(state.completed.size(), 1u);
    EXPECT_EQ(state.completed[0].index, 0u);
    ASSERT_EQ(state.outstanding.size(), 2u);
    EXPECT_EQ(state.outstanding[0].index, 1u);
    EXPECT_EQ(state.outstanding[0].worker, "w1");
    EXPECT_EQ(state.outstanding[1].index, 2u);
    EXPECT_EQ(state.leaseLines, 4u);
    EXPECT_EQ(state.expireLines, 1u);
    EXPECT_EQ(state.skipped, 0u);
}

TEST(DistLedger, AdversarialLinesAreSkippedNeverFatal)
{
    std::ostringstream os;
    os << manifestLine(0, "first");
    os << leaseLine(1, "k1", "w0");
    os << "this is not json\n";                       // junk
    os << manifestLine(1, "k1");                      // completes 1
    os << "{\"ledger\":\"elfsim-ledger-v1\","
          "\"event\":\"frobnicate\",\"index\":9,"
          "\"worker\":\"w9\"}\n";                     // alien event
    os << "{\"manifest\":\"elfsim-manifest-v9\","
          "\"index\":5,\"key\":\"x\"}\n";             // alien schema
    os << manifestLine(0, "second");                  // duplicate: wins
    // A crash mid-append: the final line is torn in half, no newline.
    const std::string torn = manifestLine(2, "k2");
    os << torn.substr(0, torn.size() / 2);

    std::istringstream is(os.str());
    const dist::LedgerState state = dist::readLedger(is);
    ASSERT_EQ(state.completed.size(), 2u);
    EXPECT_EQ(state.completed[0].index, 0u);
    EXPECT_EQ(state.completed[0].key, "second"); // last line wins
    EXPECT_EQ(state.completed[1].index, 1u);
    EXPECT_TRUE(state.outstanding.empty());
    EXPECT_EQ(state.skipped, 4u);
}

TEST(DistLedger, PlainManifestReaderSurvivesInterleavedLedgerLines)
{
    // A ledger IS a valid resume manifest: the plain manifest reader
    // must skip the scheduling lines (and any torn tail) and still
    // return every completed cell.
    std::ostringstream os;
    os << leaseLine(0, "k0", "w0");
    os << manifestLine(0, "k0");
    os << leaseLine(1, "k1", "w1");
    os << expireLine(1, "w1");
    os << manifestLine(1, "k1");
    os << "garbage line\n";
    const std::string torn = manifestLine(2, "k2");
    os << torn.substr(0, torn.size() / 2);

    std::istringstream is(os.str());
    const std::vector<ManifestEntry> entries = readManifest(is);
    ASSERT_EQ(entries.size(), 2u);
    EXPECT_EQ(entries[0].index, 0u);
    EXPECT_EQ(entries[1].index, 1u);
}

// -------------------------------------------- subset-merge invariant

TEST(DistSubset, DisjointSubsetRunsMergeByteIdenticallyToFullRun)
{
    const SweepSpec spec = distSpec("subset", {{8, 0.5}, {4, 0.9}},
                                    2000, 4000);
    const std::string reference = referenceBytes(spec);
    ExpandedSweep ex = expandSweep(spec);

    SweepRunner a(1), b(1);
    a.setBaseSeed(spec.baseSeed);
    b.setBaseSeed(spec.baseSeed);
    const std::vector<RunResult> ra = a.run(ex.jobs, {0, 3});
    const std::vector<RunResult> rb = b.run(ex.jobs, {1, 2});

    std::vector<RunResult> merged(ex.jobs.size());
    merged[0] = ra[0];
    merged[3] = ra[3];
    merged[1] = rb[1];
    merged[2] = rb[2];
    EXPECT_EQ(mergedBytes(merged), reference);
}

// ------------------------------------------------- worker endpoints

TEST(DistWorker, ShardEndpointStreamsManifestLinesAndDone)
{
    const SweepSpec spec = distSpec("shard", {{8, 0.5}, {4, 0.9}},
                                    2000, 4000);
    ExpandedSweep ex = expandSweep(spec);

    service::ServiceConfig cfg;
    cfg.worker = true;
    cfg.jobs = 1;
    cfg.heartbeatMs = 5;
    service::SweepService svc(cfg);
    svc.start();

    const std::vector<std::size_t> cells = {0, 1, 2, 3};
    const service::HttpResponse resp =
        service::httpFetch("127.0.0.1", svc.port(), "POST", "/shard",
                           dist::writeShardRequest(spec, cells));
    ASSERT_EQ(resp.status, 200);

    std::vector<RunResult> merged(ex.jobs.size());
    std::size_t results = 0;
    bool sawDone = false;
    std::uint64_t doneCells = 0;
    for (const std::string &line : splitLines(resp.body)) {
        const dist::ShardLine sl = dist::parseShardLine(line);
        if (sl.kind == dist::ShardLine::Kind::Result) {
            ASSERT_LT(sl.entry.index, merged.size());
            EXPECT_EQ(sl.entry.key,
                      sweepJobKey(ex.jobs[sl.entry.index],
                                  sl.entry.index, spec.baseSeed));
            merged[sl.entry.index] = sl.entry.result;
            ++results;
        } else if (sl.kind == dist::ShardLine::Kind::Done) {
            sawDone = true;
            doneCells = sl.cells;
        }
    }
    EXPECT_EQ(results, cells.size());
    EXPECT_TRUE(sawDone);
    EXPECT_EQ(doneCells, cells.size());
    EXPECT_EQ(mergedBytes(merged), referenceBytes(spec));

    svc.stop();
}

TEST(DistWorker, FleetEndpointsRequireWorkerMode)
{
    service::SweepService svc; // worker = false
    svc.start();
    const SweepSpec spec = distSpec("fleet403", {{8, 0.5}}, 2000, 4000);
    EXPECT_EQ(service::httpFetch("127.0.0.1", svc.port(), "POST",
                                 "/shard",
                                 dist::writeShardRequest(spec, {0}))
                  .status,
              403);
    EXPECT_EQ(service::httpFetch("127.0.0.1", svc.port(), "POST",
                                 "/artifact/trace", "junk",
                                 {{"x-elfsim-key", "00000000000000aa"}})
                  .status,
              403);
    EXPECT_EQ(service::httpFetch("127.0.0.1", svc.port(), "POST",
                                 "/artifact/ckpt", "junk",
                                 {{"x-elfsim-name", "a.eckpt"}})
                  .status,
              403);
    svc.stop();
}

TEST(DistWorker, BadShardsAndCorruptArtifactsAreRejected)
{
    service::ServiceConfig cfg;
    cfg.worker = true;
    cfg.jobs = 1;
    service::SweepService svc(cfg);
    svc.start();

    const SweepSpec spec = distSpec("reject", {{8, 0.5}}, 2000, 4000);
    // Grid has 2 cells (1 micro x 2 variants): index 9 is out of range.
    EXPECT_EQ(service::httpFetch("127.0.0.1", svc.port(), "POST",
                                 "/shard",
                                 dist::writeShardRequest(spec, {9}))
                  .status,
              400);
    // Empty cell set: a shard that runs nothing is a caller bug.
    EXPECT_EQ(service::httpFetch("127.0.0.1", svc.port(), "POST",
                                 "/shard",
                                 dist::writeShardRequest(spec, {}))
                  .status,
              400);
    // A corrupt trace image must be rejected, not silently demoted to
    // a local recompile — that would break one-compile-per-fleet.
    EXPECT_EQ(service::httpFetch("127.0.0.1", svc.port(), "POST",
                                 "/artifact/trace", "not a trace",
                                 {{"x-elfsim-key", "00000000000000aa"},
                                  {"x-elfsim-name", "bad"}})
                  .status,
              400);
    // No checkpoint directory configured: uploads have nowhere to go.
    EXPECT_EQ(service::httpFetch("127.0.0.1", svc.port(), "POST",
                                 "/artifact/ckpt", "junk",
                                 {{"x-elfsim-name", "a.eckpt"}})
                  .status,
              400);
    svc.stop();
}

// ----------------------------------------------------- coordinator

TEST(DistCoordinator, MergesByteIdenticallyAndJournalsTheLedger)
{
    const SweepSpec spec = distSpec("coord", {{8, 0.5}, {4, 0.9}},
                                    2000, 4000);

    service::ServiceConfig wcfg;
    wcfg.worker = true;
    wcfg.jobs = 1;
    service::SweepService w1(wcfg), w2(wcfg);
    w1.start();
    w2.start();

    const std::string ledger = tmpPath("dist_coord_ledger.jsonl");
    std::remove(ledger.c_str());

    dist::CoordinatorConfig cfg;
    cfg.workers = {{"127.0.0.1", w1.port()}, {"127.0.0.1", w2.port()}};
    cfg.ledgerPath = ledger;
    cfg.chunkCells = 1;
    cfg.leaseSeconds = 30;
    dist::SweepCoordinator coord(cfg);
    const std::vector<RunResult> results = coord.run(spec);

    EXPECT_EQ(mergedBytes(results), referenceBytes(spec));
    EXPECT_EQ(coord.stats().cellsTotal, 4u);
    EXPECT_EQ(coord.stats().cellsRun, 4u);
    EXPECT_EQ(coord.stats().cellsAdopted, 0u);
    EXPECT_EQ(coord.stats().cellsSynthFailed, 0u);
    EXPECT_EQ(coord.stats().chunksDispatched, 4u);
    EXPECT_EQ(coord.stats().leasesExpired, 0u);

    // The ledger replays to exactly the completed grid.
    std::ifstream is(ledger);
    ASSERT_TRUE(is.good());
    const dist::LedgerState state = dist::readLedger(is);
    EXPECT_EQ(state.completed.size(), 4u);
    EXPECT_TRUE(state.outstanding.empty());
    EXPECT_EQ(state.leaseLines, 4u);
    EXPECT_EQ(state.skipped, 0u);

    // Resume from the finished ledger: every cell is adopted, no
    // worker is ever contacted (the endpoint below is unreachable).
    dist::CoordinatorConfig rcfg;
    rcfg.workers = {{"127.0.0.1", 9}};
    rcfg.ledgerPath = ledger;
    rcfg.resume = true;
    dist::SweepCoordinator resumed(rcfg);
    const std::vector<RunResult> adopted = resumed.run(spec);
    EXPECT_EQ(mergedBytes(adopted), referenceBytes(spec));
    EXPECT_EQ(resumed.stats().cellsAdopted, 4u);
    EXPECT_EQ(resumed.stats().cellsRun, 0u);

    w1.stop();
    w2.stop();
    std::remove(ledger.c_str());
}

TEST(DistCoordinator, SpawnedFleetMergesByteIdentically)
{
    const std::string bin = workerBinary();
    if (bin.empty())
        GTEST_SKIP() << "ELFSIM_BENCH_DIR not set";

    const SweepSpec spec = distSpec("fleet", {{7, 0.45}, {5, 0.85}},
                                    2000, 4000);
    std::vector<dist::LocalWorker> fleet =
        dist::spawnLocalWorkers(bin, 2, 1);

    dist::CoordinatorConfig cfg;
    for (const dist::LocalWorker &w : fleet)
        cfg.workers.push_back({"127.0.0.1", w.port});
    cfg.leaseSeconds = 30;
    dist::SweepCoordinator coord(cfg);
    std::vector<RunResult> results;
    try {
        results = coord.run(spec);
    } catch (...) {
        dist::stopLocalWorkers(fleet);
        throw;
    }
    dist::stopLocalWorkers(fleet);

    EXPECT_EQ(mergedBytes(results), referenceBytes(spec));
    EXPECT_EQ(coord.stats().cellsRun, 4u);
}

TEST(DistCoordinator, KillNineWorkerExpiresLeasesAndReassignsCells)
{
    const std::string bin = workerBinary();
    if (bin.empty())
        GTEST_SKIP() << "ELFSIM_BENCH_DIR not set";

    // 8 cells so the victim provably completes work before it dies.
    const SweepSpec spec =
        distSpec("kill9",
                 {{10, 0.4}, {6, 0.8}, {12, 0.3}, {5, 0.6}},
                 2000, 4000);
    const std::string reference = referenceBytes(spec);

    std::vector<dist::LocalWorker> fleet =
        dist::spawnLocalWorkers(bin, 2, 1);
    const std::string victimId =
        "127.0.0.1:" + std::to_string(fleet[0].port);
    const pid_t victimPid = fleet[0].pid;

    dist::CoordinatorConfig cfg;
    for (const dist::LocalWorker &w : fleet)
        cfg.workers.push_back({"127.0.0.1", w.port});
    cfg.ledgerPath = tmpPath("dist_kill9_ledger.jsonl");
    std::remove(cfg.ledgerPath.c_str());
    cfg.chunkCells = 1;
    cfg.leaseSeconds = 10;
    // Quarantine the victim on its first failure so its cells requeue
    // exactly once — the merge must not depend on retry accounting.
    cfg.maxWorkerFailures = 1;
    cfg.maxCellRetries = 16;

    dist::SweepCoordinator coord(cfg);
    std::atomic<unsigned> victimLeases{0};
    coord.setLeaseObserver(
        [&](const std::vector<std::size_t> &, const std::string &id)
        {
            // Let the victim finish its first chunk, then SIGKILL it
            // the moment its second lease is journaled: that lease
            // can only be satisfied by expiry and reassignment.
            if (id == victimId && ++victimLeases == 2)
                ::kill(victimPid, SIGKILL);
        });

    std::vector<RunResult> results;
    try {
        results = coord.run(spec);
    } catch (...) {
        dist::stopLocalWorkers(fleet);
        throw;
    }
    dist::stopLocalWorkers(fleet);

    EXPECT_GE(victimLeases.load(), 2u);
    EXPECT_GE(coord.stats().leasesExpired, 1u);
    EXPECT_GE(coord.stats().requeues, 1u);
    // The victim lands in quarantine (not permanent retirement); its
    // health probes against the killed port never succeed, so it is
    // either declared dead (probe budget spent) or still in probation
    // when the survivor finishes the grid — never re-admitted.
    EXPECT_EQ(coord.stats().quarantines, 1u);
    EXPECT_EQ(coord.stats().readmissions, 0u);
    EXPECT_LE(coord.stats().workersDead, 1u);
    EXPECT_EQ(coord.stats().cellsSynthFailed, 0u);
    EXPECT_EQ(coord.stats().cellsRun, 8u);
    EXPECT_EQ(mergedBytes(results), reference);

    // The ledger tells the same story: expiries recorded, every cell
    // completed, nothing outstanding.
    std::ifstream is(cfg.ledgerPath);
    ASSERT_TRUE(is.good());
    const dist::LedgerState state = dist::readLedger(is);
    EXPECT_EQ(state.completed.size(), 8u);
    EXPECT_TRUE(state.outstanding.empty());
    EXPECT_GE(state.expireLines, 1u);
    std::remove(cfg.ledgerPath.c_str());
}

TEST(DistCoordinator, FleetCompilesEachProgramOnce)
{
    const std::string bin = workerBinary();
    if (bin.empty())
        GTEST_SKIP() << "ELFSIM_BENCH_DIR not set";
    if (!TraceCache::instance().enabled())
        GTEST_SKIP() << "trace compilation disabled in this environment";

    // Unique generator args + budget: nothing earlier in this process
    // (or in the fresh workers) has compiled these traces.
    const SweepSpec spec = distSpec("fleetcompile",
                                    {{11, 0.35}, {9, 0.65}},
                                    2500, 4500);

    std::vector<dist::LocalWorker> fleet =
        dist::spawnLocalWorkers(bin, 2, 1);

    dist::CoordinatorConfig cfg;
    for (const dist::LocalWorker &w : fleet)
        cfg.workers.push_back({"127.0.0.1", w.port});
    cfg.chunkCells = 1;
    cfg.leaseSeconds = 30;
    dist::SweepCoordinator coord(cfg);

    const TraceStats before = TraceCache::instance().stats();
    std::vector<RunResult> results;
    std::uint64_t workerCompiles = 0, workerHits = 0, workerShards = 0;
    try {
        results = coord.run(spec);
        for (const dist::LocalWorker &w : fleet) {
            const service::HttpResponse resp = service::httpFetch(
                "127.0.0.1", w.port, "GET", "/stats");
            ASSERT_EQ(resp.status, 200);
            const json::Value doc = json::parse(resp.body);
            workerCompiles +=
                doc.at("trace").at("trace.compiles").asU64();
            workerHits +=
                doc.at("trace").at("trace.cache_hits").asU64();
            workerShards +=
                doc.at("service").at("service.shards").asU64();
        }
    } catch (...) {
        dist::stopLocalWorkers(fleet);
        throw;
    }
    dist::stopLocalWorkers(fleet);
    const TraceStats delta = TraceCache::instance().stats().delta(before);

    EXPECT_EQ(mergedBytes(results), referenceBytes(spec));

    // One compile per distinct program, fleet-wide: both live in the
    // coordinator; the workers only install the shipped images and
    // hit their memos.
    EXPECT_EQ(delta.compiles, 2u);
    EXPECT_EQ(workerCompiles, 0u);
    EXPECT_GE(workerHits, 1u);
    EXPECT_GE(workerShards, 1u);
    EXPECT_EQ(coord.stats().tracesShipped, 4u); // 2 programs x 2 workers
}

// ------------------------------------------------- chaos (net faults)

/**
 * Arm the process-wide injector for one test; disarm on any exit
 * path so a failing assertion cannot poison the next test.
 *
 * Ordering matters: construct this BEFORE the in-process worker
 * services and let it unwind after they stop. Thread creation is the
 * only happens-before edge the armed list gets, so arming while a
 * service thread is already polling would be a data race (and a
 * service thread could legitimately keep seeing the pre-arm state).
 */
struct ScopedFaults
{
    explicit ScopedFaults(const std::string &spec)
    {
        FaultInjector::instance().arm(FaultInjector::parse(spec));
    }
    ~ScopedFaults() { FaultInjector::instance().disarm(); }
};

/** N in-process worker services plus a coordinator config pointed at
 *  them (chunk = 1 cell so scheduling decisions are visible). */
struct InProcFleet
{
    std::vector<std::unique_ptr<service::SweepService>> workers;
    dist::CoordinatorConfig cfg;

    explicit InProcFleet(std::size_t n)
    {
        service::ServiceConfig wcfg;
        wcfg.worker = true;
        wcfg.jobs = 1;
        for (std::size_t i = 0; i < n; ++i) {
            workers.push_back(
                std::make_unique<service::SweepService>(wcfg));
            workers.back()->start();
            cfg.workers.push_back(
                {"127.0.0.1", workers.back()->port()});
        }
        cfg.leaseSeconds = 30;
        cfg.chunkCells = 1;
    }

    ~InProcFleet()
    {
        for (auto &w : workers)
            w->stop();
    }
};

/**
 * 1-based ordinal of the first shard-stream line delivered to a
 * worker, for netdrop/nethb specs that must hit the stream rather
 * than the staging pass: artifact uploads consume the first
 * droppable-event ordinals (one per distinct program when trace
 * compilation is enabled), stream lines follow.
 */
std::uint64_t
firstStreamEvent(std::size_t programs)
{
    return (TraceCache::instance().enabled() ? programs : 0) + 1;
}

TEST(DistChaos, RefusedConnectsBackOffAndRecover)
{
    // Refuse the first two connects to worker 0. Depending on whether
    // trace compilation is enabled they land on the staging uploads
    // (upload retry path) or on the first shard dispatches (connect
    // backoff path); either way the run must recover without
    // quarantining anyone and merge byte-identically.
    ScopedFaults faults("netrefuse:0:2");
    const SweepSpec spec = distSpec("netrefuse", {{13, 0.55}, {3, 0.7}},
                                    2000, 4000);
    const std::string reference = referenceBytes(spec);

    InProcFleet fleet(2);
    fleet.cfg.reconnectBaseMs = 1;
    fleet.cfg.reconnectCapMs = 8;
    dist::SweepCoordinator coord(fleet.cfg);
    const std::vector<RunResult> results = coord.run(spec);

    EXPECT_EQ(mergedBytes(results), reference);
    EXPECT_EQ(coord.stats().cellsRun, 4u);
    EXPECT_GE(coord.stats().connectRetries +
                  coord.stats().artifactRetries,
              2u);
    EXPECT_EQ(coord.stats().quarantines, 0u);
    EXPECT_EQ(coord.stats().cellsSynthFailed, 0u);
}

TEST(DistChaos, MidStreamDisconnectRequeuesTheChunk)
{
    // Tear worker 0's shard stream at its first delivered line: the
    // chunk's cells expire, requeue, and complete elsewhere.
    ScopedFaults faults(
        "netdrop:0:" + std::to_string(firstStreamEvent(2)));
    const SweepSpec spec = distSpec("netdrop", {{15, 0.52}, {9, 0.33}},
                                    2000, 4000);
    const std::string reference = referenceBytes(spec);

    InProcFleet fleet(2);
    fleet.cfg.ledgerPath = tmpPath("dist_netdrop_ledger.jsonl");
    std::remove(fleet.cfg.ledgerPath.c_str());
    dist::SweepCoordinator coord(fleet.cfg);
    const std::vector<RunResult> results = coord.run(spec);

    EXPECT_EQ(mergedBytes(results), reference);
    EXPECT_EQ(coord.stats().cellsRun, 4u);
    EXPECT_GE(coord.stats().leasesExpired, 1u);
    EXPECT_GE(coord.stats().requeues, 1u);
    EXPECT_EQ(coord.stats().cellsSynthFailed, 0u);

    std::ifstream is(fleet.cfg.ledgerPath);
    ASSERT_TRUE(is.good());
    const dist::LedgerState state = dist::readLedger(is);
    EXPECT_EQ(state.completed.size(), 4u);
    EXPECT_TRUE(state.outstanding.empty());
    EXPECT_GE(state.expireLines, 1u);
    std::remove(fleet.cfg.ledgerPath.c_str());
}

TEST(DistChaos, TruncatedStreamNeverPoisonsTheMerge)
{
    // Cut worker 0's stream 25 raw bytes in — mid-line, so a torn
    // JSON prefix is delivered and must be discarded, never merged.
    ScopedFaults faults("nettrunc:0:25");
    const SweepSpec spec = distSpec("nettrunc", {{16, 0.48}, {7, 0.72}},
                                    2000, 4000);
    const std::string reference = referenceBytes(spec);

    InProcFleet fleet(2);
    dist::SweepCoordinator coord(fleet.cfg);
    const std::vector<RunResult> results = coord.run(spec);

    EXPECT_EQ(mergedBytes(results), reference);
    EXPECT_EQ(coord.stats().cellsRun, 4u);
    EXPECT_GE(coord.stats().requeues, 1u);
    EXPECT_EQ(coord.stats().cellsSynthFailed, 0u);
}

TEST(DistChaos, CorruptedArtifactIsRejectedAndResent)
{
    if (!TraceCache::instance().enabled())
        GTEST_SKIP() << "trace compilation disabled in this environment";

    // Flip a byte in the first trace image sent to worker 0: the
    // worker's content-hash check 400s it, the retry is intact, and
    // every program still reaches every worker.
    ScopedFaults faults("netcorrupt:0:1");
    const SweepSpec spec = distSpec("netcorrupt",
                                    {{17, 0.38}, {8, 0.68}},
                                    2000, 4000);
    const std::string reference = referenceBytes(spec);

    InProcFleet fleet(2);
    dist::SweepCoordinator coord(fleet.cfg);
    const std::vector<RunResult> results = coord.run(spec);

    EXPECT_EQ(mergedBytes(results), reference);
    EXPECT_GE(coord.stats().artifactRetries, 1u);
    EXPECT_EQ(coord.stats().tracesShipped, 4u); // 2 programs x 2 workers
    EXPECT_EQ(coord.stats().quarantines, 0u);
}

TEST(DistChaos, ArtifactUploadRetriesAfterTransientDisconnect)
{
    if (!TraceCache::instance().enabled())
        GTEST_SKIP() << "trace compilation disabled in this environment";

    // The first droppable event to worker 0 is its first staging
    // upload: the connection tears mid-upload and the retry lands.
    ScopedFaults faults("netdrop:0:1");
    const SweepSpec spec = distSpec("artretry", {{18, 0.44}, {6, 0.56}},
                                    2000, 4000);
    const std::string reference = referenceBytes(spec);

    InProcFleet fleet(2);
    dist::SweepCoordinator coord(fleet.cfg);
    const std::vector<RunResult> results = coord.run(spec);

    EXPECT_EQ(mergedBytes(results), reference);
    EXPECT_GE(coord.stats().artifactRetries, 1u);
    EXPECT_EQ(coord.stats().tracesShipped, 4u);
    EXPECT_EQ(coord.stats().quarantines, 0u);
    EXPECT_EQ(coord.stats().cellsRun, 4u);
}

TEST(DistChaos, DroppedHeartbeatsExpireTheLease)
{
    // Heartbeat silence shows up as a receive timeout on worker 0's
    // first stream line: the lease expires and the cells requeue.
    ScopedFaults faults(
        "nethb:0:" + std::to_string(firstStreamEvent(2)));
    const SweepSpec spec = distSpec("nethb", {{19, 0.41}, {10, 0.61}},
                                    2000, 4000);
    const std::string reference = referenceBytes(spec);

    InProcFleet fleet(2);
    dist::SweepCoordinator coord(fleet.cfg);
    const std::vector<RunResult> results = coord.run(spec);

    EXPECT_EQ(mergedBytes(results), reference);
    EXPECT_EQ(coord.stats().cellsRun, 4u);
    EXPECT_GE(coord.stats().leasesExpired, 1u);
    EXPECT_GE(coord.stats().requeues, 1u);
    EXPECT_EQ(coord.stats().cellsSynthFailed, 0u);
}

TEST(DistChaos, QuarantinedWorkerIsReadmittedByHealthProbe)
{
    // Worker 0's first stream line tears its first chunk (one-shot);
    // the service itself stays healthy, so the very first /healthz
    // probe re-admits it and it finishes real work afterwards. The
    // 20 ms send delay on worker 1 keeps the 8-cell queue occupied
    // while the victim sits in probation.
    ScopedFaults faults(
        "netdrop:0:" + std::to_string(firstStreamEvent(4)) +
        ",netslow:1:0");
    const SweepSpec spec =
        distSpec("readmit",
                 {{20, 0.36}, {11, 0.58}, {13, 0.29}, {6, 0.47}},
                 2000, 4000);
    const std::string reference = referenceBytes(spec);

    InProcFleet fleet(2);
    fleet.cfg.maxWorkerFailures = 1; // first failure -> quarantine
    fleet.cfg.probeBaseMs = 1;
    fleet.cfg.probeCapMs = 4;
    dist::SweepCoordinator coord(fleet.cfg);
    const std::vector<RunResult> results = coord.run(spec);

    EXPECT_EQ(mergedBytes(results), reference);
    EXPECT_EQ(coord.stats().cellsRun, 8u);
    EXPECT_EQ(coord.stats().quarantines, 1u);
    EXPECT_EQ(coord.stats().readmissions, 1u);
    EXPECT_EQ(coord.stats().workersDead, 0u);
    EXPECT_EQ(coord.stats().cellsSynthFailed, 0u);
}

TEST(DistChaos, HedgedDispatchDuplicatesTheStragglerOnce)
{
    // A two-cell grid: both workers lease their primary at t=0, so
    // their run times track each other closely — except cell 1, whose
    // injected sleeps (the spec is repeated: every matching entry
    // fires per poll, so six entries buy ~6 ms per poll and roughly
    // 100 ms of straggling) make it finish far behind cell 0. The
    // early finisher goes idle, waits out the hedge delay, and
    // duplicates the straggler. First completion wins; the loser's
    // lease expires without a requeue. (The reference run below also
    // pays the sleeps; 'slow' never changes simulated bytes, only
    // wall time.)
    ScopedFaults faults("slow:1:0,slow:1:0,slow:1:0,"
                        "slow:1:0,slow:1:0,slow:1:0");
    const SweepSpec spec = distSpec("hedge", {{14, 0.42}},
                                    2000, 48000);
    const std::string reference = referenceBytes(spec);

    InProcFleet fleet(2);
    fleet.cfg.hedgeDelayMs = 2;
    fleet.cfg.ledgerPath = tmpPath("dist_hedge_ledger.jsonl");
    std::remove(fleet.cfg.ledgerPath.c_str());
    dist::SweepCoordinator coord(fleet.cfg);
    const std::vector<RunResult> results = coord.run(spec);

    EXPECT_EQ(mergedBytes(results), reference);
    EXPECT_EQ(coord.stats().cellsRun, 2u);
    EXPECT_GE(coord.stats().hedges, 1u);
    // A losing hedge is not a scheduling failure: nothing requeues,
    // no lease "expires" in the accounting sense.
    EXPECT_EQ(coord.stats().leasesExpired, 0u);
    EXPECT_EQ(coord.stats().requeues, 0u);
    EXPECT_EQ(coord.stats().cellsSynthFailed, 0u);

    // The ledger carries the hedge lines, and replay still resolves
    // to the completed grid with nothing outstanding: hedges are
    // redundant racers, never scheduling truth.
    std::ifstream is(fleet.cfg.ledgerPath);
    ASSERT_TRUE(is.good());
    const dist::LedgerState state = dist::readLedger(is);
    EXPECT_EQ(state.completed.size(), 2u);
    EXPECT_TRUE(state.outstanding.empty());
    EXPECT_GE(state.leaseLines, 3u); // 2 primaries + >=1 hedge
    std::remove(fleet.cfg.ledgerPath.c_str());
}

TEST(DistChaos, FleetLossFallsBackInProcessByteIdentically)
{
    // Every connect to every worker is refused: both workers drain
    // their probe budgets and die, and the coordinator finishes the
    // whole grid in-process — byte-identical to a --local run.
    ScopedFaults faults("netrefuse:*:0");
    const SweepSpec spec = distSpec("fleetloss", {{21, 0.37}, {12, 0.57}},
                                    2000, 4000);
    const std::string reference = referenceBytes(spec);

    InProcFleet fleet(2);
    fleet.cfg.maxWorkerFailures = 1;
    fleet.cfg.connectAttempts = 2;
    fleet.cfg.reconnectBaseMs = 1;
    fleet.cfg.reconnectCapMs = 4;
    fleet.cfg.quarantineProbes = 2;
    fleet.cfg.probeBaseMs = 1;
    fleet.cfg.probeCapMs = 4;
    fleet.cfg.ledgerPath = tmpPath("dist_fleetloss_ledger.jsonl");
    std::remove(fleet.cfg.ledgerPath.c_str());
    dist::SweepCoordinator coord(fleet.cfg);
    const std::vector<RunResult> results = coord.run(spec);

    EXPECT_EQ(mergedBytes(results), reference);
    EXPECT_EQ(coord.stats().cellsRun, 0u);
    EXPECT_EQ(coord.stats().cellsFallback, 4u);
    EXPECT_EQ(coord.stats().quarantines, 2u);
    EXPECT_EQ(coord.stats().workersDead, 2u);
    EXPECT_EQ(coord.stats().cellsSynthFailed, 0u);

    // The fallback journals its own leases and completions: replay
    // resolves to the full grid, nothing outstanding.
    std::ifstream is(fleet.cfg.ledgerPath);
    ASSERT_TRUE(is.good());
    const dist::LedgerState state = dist::readLedger(is);
    EXPECT_EQ(state.completed.size(), 4u);
    EXPECT_TRUE(state.outstanding.empty());
    std::remove(fleet.cfg.ledgerPath.c_str());
}

TEST(DistChaos, LeaseNotExceedingHeartbeatIsRejectedUpFront)
{
    const SweepSpec spec = distSpec("cfgerr", {{8, 0.5}}, 100, 100);
    dist::CoordinatorConfig cfg;
    cfg.workers = {{"127.0.0.1", 9}};
    cfg.leaseSeconds = 1;
    cfg.workerHeartbeatMs = 1000;
    dist::SweepCoordinator coord(cfg);
    EXPECT_THROW(coord.run(spec), ConfigError);
}

} // namespace
} // namespace elfsim
