#include <gtest/gtest.h>

#include "bpred/bimodal.hh"
#include "bpred/btc.hh"
#include "bpred/ras.hh"

using namespace elfsim;

TEST(Bimodal, LearnsBias)
{
    Bimodal b;
    const Addr pc = 0x400010;
    for (int i = 0; i < 10; ++i)
        b.update(pc, true);
    EXPECT_TRUE(b.predict(pc));
    EXPECT_TRUE(b.saturated(pc));
    for (int i = 0; i < 10; ++i)
        b.update(pc, false);
    EXPECT_FALSE(b.predict(pc));
}

TEST(Bimodal, SaturationGateForCondElf)
{
    // COND-ELF only speculates past saturated counters: a couple of
    // updates must not saturate a 3-bit counter.
    Bimodal b;
    const Addr pc = 0x400020;
    b.update(pc, true);
    b.update(pc, true);
    EXPECT_FALSE(b.saturated(pc));
    for (int i = 0; i < 8; ++i)
        b.update(pc, true);
    EXPECT_TRUE(b.saturated(pc));
}

TEST(Bimodal, AliasingUsesIndexModuloEntries)
{
    BimodalParams p;
    p.entries = 16;
    Bimodal b(p);
    const Addr pc = 0x400000;
    const Addr alias = pc + 16 * instBytes;
    for (int i = 0; i < 8; ++i)
        b.update(pc, true);
    EXPECT_TRUE(b.predict(alias)); // same entry
}

TEST(Bimodal, StorageMatchesPaper)
{
    // 2K entries x 3 bits = 0.75KB (Table II).
    Bimodal b;
    EXPECT_DOUBLE_EQ(b.storageBytes(), 768.0);
}

TEST(Ras, PushPopLifo)
{
    ReturnAddressStack ras(4);
    ras.push(0x100);
    ras.push(0x200);
    EXPECT_EQ(ras.pop(), 0x200u);
    EXPECT_EQ(ras.pop(), 0x100u);
    EXPECT_EQ(ras.pop(), invalidAddr);
}

TEST(Ras, OverflowWrapsKeepingNewest)
{
    ReturnAddressStack ras(2);
    ras.push(1);
    ras.push(2);
    ras.push(3); // overwrites the oldest
    EXPECT_EQ(ras.pop(), 3u);
    EXPECT_EQ(ras.pop(), 2u);
}

TEST(Ras, SnapshotRestoreRepairsTop)
{
    ReturnAddressStack ras(8);
    ras.push(0xa);
    ras.push(0xb);
    const auto snap = ras.snapshot();
    // Speculative activity: pop both, push garbage that lands on the
    // checkpointed top slot.
    ras.pop();
    ras.pop();
    ras.push(0xdead);
    ras.push(0xbeef);
    ras.restore(snap);
    // The snapshot repairs the top-of-stack entry. Deeper corruption
    // (0xdead overwrote 0xa) is unrecoverable by design — real RAS
    // checkpoints save only (pointer, top value).
    EXPECT_EQ(ras.top(), 0xbu);
    EXPECT_EQ(ras.pop(), 0xbu);
    EXPECT_EQ(ras.size(), 1u);
}

TEST(Ras, SnapshotRestoreWithoutDeepCorruption)
{
    // When speculation did not wrap into checkpointed slots, restore
    // recovers the full stack.
    ReturnAddressStack ras(8);
    ras.push(0xa);
    ras.push(0xb);
    const auto snap = ras.snapshot();
    ras.push(0xc); // speculative push above the checkpoint
    ras.restore(snap);
    EXPECT_EQ(ras.pop(), 0xbu);
    EXPECT_EQ(ras.pop(), 0xau);
    EXPECT_TRUE(ras.empty());
}

TEST(Ras, CopyAssignGivesIndependentStacks)
{
    ReturnAddressStack a(8), b(8);
    a.push(1);
    b = a;
    b.push(2);
    EXPECT_EQ(a.size(), 1u);
    EXPECT_EQ(b.size(), 2u);
    EXPECT_EQ(b.pop(), 2u);
    EXPECT_EQ(a.top(), 1u);
}

TEST(Btc, HitAfterUpdate)
{
    BranchTargetCache btc;
    EXPECT_EQ(btc.predict(0x400100), invalidAddr);
    btc.update(0x400100, 0x500000);
    EXPECT_EQ(btc.predict(0x400100), 0x500000u);
}

TEST(Btc, ConflictEvicts)
{
    BtcParams p;
    p.entries = 16;
    BranchTargetCache btc(p);
    const Addr a = 0x400000;
    const Addr b = a + 16 * instBytes; // same index, different tag
    btc.update(a, 0x111);
    btc.update(b, 0x222);
    EXPECT_EQ(btc.predict(a), invalidAddr);
    EXPECT_EQ(btc.predict(b), 0x222u);
}

TEST(Btc, TagPreventsFalseHit)
{
    BranchTargetCache btc;
    btc.update(0x400100, 0x500000);
    // Different PC, same index would require entries distance; use a
    // PC far away mapping to the same slot.
    const Addr alias = 0x400100 + 64 * instBytes;
    EXPECT_EQ(btc.predict(alias), invalidAddr);
}
