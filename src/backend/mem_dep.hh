/**
 * @file
 * PC-based memory-dependence filter (paper Table II): a violating
 * load/store pair is recorded; when the load's PC is renamed again,
 * it waits for the matching older store instead of speculating past
 * it.
 */

#ifndef ELFSIM_BACKEND_MEM_DEP_HH
#define ELFSIM_BACKEND_MEM_DEP_HH

#include <cstdint>
#include <vector>

#include "common/serialize.hh"
#include "common/types.hh"

namespace elfsim {

/** The violating-pair filter. */
class MemDepPredictor
{
  public:
    /**
     * @param entries Direct-mapped table size.
     * @param max_uses An entry expires after this many filtered loads
     *        without a new violation — a permanent entry would
     *        serialize a hot load/store pair forever once a single
     *        (possibly wrong-path-induced) violation trained it.
     */
    explicit MemDepPredictor(unsigned entries = 256,
                             unsigned max_uses = 64);

    /** @return the recorded store PC for @a load_pc (invalidAddr if
     *  the load has no recorded violation). Counts a use; the entry
     *  ages out after max_uses. */
    Addr storeFor(Addr load_pc);

    /** Record a violation between @a load_pc and @a store_pc. */
    void train(Addr load_pc, Addr store_pc);

    /** Forget everything. */
    void reset();

    std::uint64_t trainings() const { return trainCount; }

    /** Serialize the violation table (warm-state checkpoints). */
    void
    saveState(Serializer &s) const
    {
        s.u64(table.size());
        for (const Entry &e : table) {
            s.u64(e.loadPC);
            s.u64(e.storePC);
            s.u32(e.uses);
        }
        s.u64(trainCount);
    }

    void
    loadState(Deserializer &d)
    {
        if (d.u64() != table.size())
            throw ParseError("mem_dep: geometry mismatch");
        for (Entry &e : table) {
            e.loadPC = d.u64();
            e.storePC = d.u64();
            e.uses = d.u32();
        }
        trainCount = d.u64();
    }

  private:
    struct Entry
    {
        Addr loadPC = invalidAddr;
        Addr storePC = invalidAddr;
        unsigned uses = 0;
    };

    std::size_t
    index(Addr pc) const
    {
        return (pc / instBytes) % table.size();
    }

    std::vector<Entry> table;
    unsigned maxUses;
    std::uint64_t trainCount = 0;
};

} // namespace elfsim

#endif // ELFSIM_BACKEND_MEM_DEP_HH
