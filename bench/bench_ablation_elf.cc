/**
 * @file
 * Ablation study of ELF's design choices (DESIGN.md's per-experiment
 * index calls these out; the paper discusses each):
 *
 *  1. Checkpoint payload policy (Section IV-D1): populate payloads
 *     from FAQ information (proposed) vs. wait for the ROB head
 *     (simple) vs. idealized free checkpoints.
 *  2. The COND-ELF saturation filter (Section VI-B): speculate only
 *     past saturated bimodal counters, or always.
 *  3. Coupled bimodal size (the paper limits it to 2K x 3-bit).
 *  4. Divergence-tracking capacity (64-entry bitvectors / 16-entry
 *     target queues in Table II).
 *  5. FAQ depth (32 in Table II).
 */

#include "bench_util.hh"

using namespace elfsim;

namespace {

double
run(const Program &p, const SimConfig &cfg, const RunOptions &o)
{
    return runSimulation(p, cfg, o).ipc;
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::Options opt = bench::parseOptions(argc, argv);
    const RunOptions o = opt.runOptions();
    bench::banner("Ablations — ELF design choices",
                  "U-ELF IPC relative to the default U-ELF "
                  "configuration, on the high-MPKI MCTS proxy");

    const WorkloadSpec *w = findWorkload("641.leela");
    Program p = buildWorkload(*w);

    const SimConfig base = makeConfig(FrontendVariant::UElf);
    const double baseIpc = run(p, base, o);
    const double dcfIpc =
        run(p, makeConfig(FrontendVariant::Dcf), o);

    std::printf("%-44s %10s\n", "configuration", "rel. IPC");
    std::printf("%-44s %10.3f\n", "U-ELF (default)", 1.0);
    std::printf("%-44s %10.3f\n", "DCF baseline", dcfIpc / baseIpc);

    {
        SimConfig c = base;
        c.payloadPolicy = PayloadPolicy::RobHead;
        std::printf("%-44s %10.3f\n",
                    "payloads wait for ROB head (IV-D1 baseline)",
                    run(p, c, o) / baseIpc);
    }
    {
        SimConfig c = base;
        c.payloadPolicy = PayloadPolicy::Ideal;
        std::printf("%-44s %10.3f\n", "idealized free checkpoints",
                    run(p, c, o) / baseIpc);
    }
    {
        SimConfig c = base;
        c.condElfRequireSaturation = false;
        std::printf("%-44s %10.3f\n",
                    "no saturation filter (speculate always)",
                    run(p, c, o) / baseIpc);
    }
    {
        SimConfig c = base;
        c.coupledPreds.bimodal.entries = 8192;
        std::printf("%-44s %10.3f\n", "4x coupled bimodal (8K entries)",
                    run(p, c, o) / baseIpc);
    }
    {
        SimConfig c = base;
        c.coupledPreds.bimodal.entries = 512;
        std::printf("%-44s %10.3f\n", "1/4 coupled bimodal (512)",
                    run(p, c, o) / baseIpc);
    }
    {
        SimConfig c = base;
        c.divergence.vecEntries = 16;
        c.divergence.targetEntries = 4;
        std::printf("%-44s %10.3f\n",
                    "1/4 divergence tracking (16-entry vectors)",
                    run(p, c, o) / baseIpc);
    }
    {
        SimConfig c = base;
        c.faqEntries = 8;
        std::printf("%-44s %10.3f\n", "shallow FAQ (8 entries)",
                    run(p, c, o) / baseIpc);
    }
    {
        SimConfig c = base;
        c.faqEntries = 128;
        std::printf("%-44s %10.3f\n", "deep FAQ (128 entries)",
                    run(p, c, o) / baseIpc);
    }
    {
        SimConfig c = base;
        c.coupledPreds.condKind = CoupledCondKind::Gshare;
        std::printf("%-44s %10.3f\n",
                    "extension: gshare coupled predictor",
                    run(p, c, o) / baseIpc);
    }
    {
        SimConfig c = base;
        c.decodeBtbFill = true;
        std::printf("%-44s %10.3f\n",
                    "extension: decode-time BTB fill (Boomerang)",
                    run(p, c, o) / baseIpc);
    }
    return 0;
}
