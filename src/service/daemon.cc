#include "service/daemon.hh"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <map>
#include <sstream>
#include <utility>

#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "common/error.hh"
#include "common/export.hh"
#include "common/logging.hh"
#include "dist/wire.hh"
#include "service/http.hh"
#include "sim/export.hh"
#include "workload/checkpoint_store.hh"
#include "workload/compiled_trace.hh"

namespace elfsim {
namespace service {

namespace {

/** A handler blocked on a silent client must not wedge the daemon
 *  forever: requests that take longer than this to arrive fail. */
constexpr long kRequestTimeoutSec = 10;

/** Parse the x-elfsim-key artifact header (16 hex digits). */
bool
parseHexKey(const std::string &text, std::uint64_t &key)
{
    if (text.empty() || text.size() > 16)
        return false;
    char *end = nullptr;
    errno = 0;
    key = std::strtoull(text.c_str(), &end, 16);
    return errno == 0 && end == text.c_str() + text.size();
}

/** Artifact file names come off the wire: flatten anything that could
 *  escape the target directory or upset a shell. */
std::string
safeArtifactName(const std::string &name)
{
    std::string out;
    out.reserve(name.size());
    for (char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '-' ||
                        c == '_' || c == '.';
        out.push_back(ok ? c : '_');
    }
    while (!out.empty() && out.front() == '.')
        out.erase(out.begin()); // no dotfiles, no ".." prefixes
    return out;
}

/** Has the peer torn the connection down? Only a hard error counts:
 *  an orderly FIN (recv == 0) is indistinguishable from the common
 *  request/response idiom of shutdown(SHUT_WR) after sending the
 *  request, where the client's read side is still open and waiting
 *  for the stream. Genuinely dead clients are caught by the failed
 *  chunk-write path, which raises the request's cancel flag. */
bool
peerGone(int fd)
{
    char b;
    const ssize_t n = ::recv(fd, &b, 1, MSG_PEEK | MSG_DONTWAIT);
    return n < 0 && (errno == ECONNRESET || errno == EPIPE);
}

} // namespace

SweepService::SweepService(ServiceConfig c)
    : cfg(std::move(c)), runner(cfg.jobs)
{
}

SweepService::~SweepService()
{
    stop();
}

void
SweepService::start()
{
    const int fd = listenTcp(cfg.host, cfg.port);
    boundPort_ = service::boundPort(fd);
    listenFd.store(fd, std::memory_order_release);
    stopping.store(false, std::memory_order_release);
    acceptThread = std::thread(&SweepService::acceptLoop, this);
    executorThread = std::thread(&SweepService::executorLoop, this);
}

void
SweepService::stop()
{
    if (stopping.exchange(true, std::memory_order_acq_rel))
        return;
    // Closing the listening socket unblocks accept().
    const int lfd = listenFd.exchange(-1, std::memory_order_acq_rel);
    if (lfd >= 0) {
        ::shutdown(lfd, SHUT_RDWR);
        ::close(lfd);
    }
    if (acceptThread.joinable())
        acceptThread.join();
    // Wait out in-flight connection handlers (they are quick: parse
    // and enqueue); they hold raw `this`.
    while (activeHandlers.load(std::memory_order_acquire) > 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    {
        // Cancel the sweep the executor is running right now, if any.
        std::lock_guard<std::mutex> lk(queueMtx);
        if (currentCancel)
            currentCancel->store(true, std::memory_order_release);
    }
    queueCv.notify_all();
    if (executorThread.joinable())
        executorThread.join();
    // Turn away everything still queued.
    std::deque<Pending> leftovers;
    {
        std::lock_guard<std::mutex> lk(queueMtx);
        leftovers.swap(queue);
    }
    for (Pending &p : leftovers) {
        writeHttpResponse(p.fd, 503, "Service Unavailable",
                          "text/plain", "shutting down\n");
        ::close(p.fd);
    }
}

void
SweepService::acceptLoop()
{
    while (!stopping.load(std::memory_order_acquire)) {
        const int lfd = listenFd.load(std::memory_order_acquire);
        if (lfd < 0)
            break;
        const int fd = ::accept(lfd, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            break; // listening socket closed by stop()
        }
        struct timeval rcv = {kRequestTimeoutSec, 0};
        ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &rcv, sizeof(rcv));
        // A client that stops *reading* must not wedge the daemon:
        // chunk writes happen on the executor thread, so a blocked
        // send() would stall every queued sweep. A send stalled past
        // cfg.sendTimeoutSec fails; the failed-write path raises the
        // request's cancel flag and the sweep degrades to cancelled.
        struct timeval snd = {cfg.sendTimeoutSec, 0};
        ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &snd, sizeof(snd));
        activeHandlers.fetch_add(1, std::memory_order_acq_rel);
        std::thread([this, fd] {
            handleConnection(fd);
            activeHandlers.fetch_sub(1, std::memory_order_acq_rel);
        }).detach();
    }
}

void
SweepService::handleConnection(int fd)
{
    HttpRequest req;
    std::string err;
    if (!readHttpRequest(fd, req, err)) {
        badRequests.fetch_add(1, std::memory_order_relaxed);
        writeHttpResponse(fd, 400, "Bad Request", "text/plain",
                          err + "\n");
        ::close(fd);
        return;
    }
    requests.fetch_add(1, std::memory_order_relaxed);

    if (req.method == "GET" && req.path == "/healthz") {
        writeHttpResponse(fd, 200, "OK", "text/plain", "ok\n");
        ::close(fd);
        return;
    }
    if (req.method == "GET" && req.path == "/stats") {
        writeHttpResponse(fd, 200, "OK", "application/json",
                          statsJson());
        ::close(fd);
        return;
    }
    if (req.method == "POST" &&
        (req.path == "/sweep" || req.path == "/shard")) {
        if (req.path == "/shard" && !cfg.worker) {
            badRequests.fetch_add(1, std::memory_order_relaxed);
            writeHttpResponse(fd, 403, "Forbidden", "text/plain",
                              "not a worker (start with --worker)\n");
            ::close(fd);
            return;
        }
        Pending p;
        try {
            if (req.path == "/shard") {
                dist::ShardRequest sr =
                    dist::parseShardRequest(req.body);
                p.spec = std::move(sr.spec);
                p.cells = std::move(sr.cells);
                p.shard = true;
                if (p.cells.empty())
                    throw ConfigError("shard request selects no cells");
            } else {
                p.spec = parseSweepSpec(std::string_view(req.body));
            }
            validateSweepSpec(p.spec);
        } catch (const SimError &e) {
            badRequests.fetch_add(1, std::memory_order_relaxed);
            writeHttpResponse(fd, 400, "Bad Request", "text/plain",
                              std::string(e.what()) + "\n");
            ::close(fd);
            return;
        }
        p.fd = fd;
        p.cancel = std::make_shared<std::atomic<bool>>(false);
        {
            std::lock_guard<std::mutex> lk(queueMtx);
            if (stopping.load(std::memory_order_acquire)) {
                writeHttpResponse(fd, 503, "Service Unavailable",
                                  "text/plain", "shutting down\n");
                ::close(fd);
                return;
            }
            queue.push_back(std::move(p)); // fd ownership moves too
        }
        queueCv.notify_one();
        return;
    }
    if (req.method == "POST" &&
        (req.path == "/artifact/trace" || req.path == "/artifact/ckpt")) {
        if (!cfg.worker) {
            badRequests.fetch_add(1, std::memory_order_relaxed);
            writeHttpResponse(fd, 403, "Forbidden", "text/plain",
                              "not a worker (start with --worker)\n");
            ::close(fd);
            return;
        }
        handleArtifact(fd, req);
        return;
    }

    badRequests.fetch_add(1, std::memory_order_relaxed);
    writeHttpResponse(fd, 404, "Not Found", "text/plain",
                      "unknown endpoint\n");
    ::close(fd);
}

void
SweepService::handleArtifact(int fd, const HttpRequest &req)
{
    // Artifact installs run inline on the handler thread: they only
    // validate bytes and touch caches, never simulate, so they must
    // not queue behind a long sweep — the coordinator ships artifacts
    // *before* dispatching shards and wants the acknowledgment now.
    const auto reject = [&](const std::string &why) {
        badRequests.fetch_add(1, std::memory_order_relaxed);
        writeHttpResponse(fd, 400, "Bad Request", "text/plain",
                          why + "\n");
        ::close(fd);
    };

    if (req.path == "/artifact/trace") {
        const auto keyIt = req.headers.find("x-elfsim-key");
        std::uint64_t key = 0;
        if (keyIt == req.headers.end() ||
            !parseHexKey(keyIt->second, key))
            return reject("missing or malformed x-elfsim-key header");
        const auto nameIt = req.headers.find("x-elfsim-name");
        const std::string what = errorf(
            "shipped trace artifact '%s'",
            nameIt != req.headers.end() ? nameIt->second.c_str()
                                        : "?");
        try {
            std::vector<char> image(req.body.begin(), req.body.end());
            TraceCache::instance().install(
                CompiledTrace::loadBytes(std::move(image), key, what));
        } catch (const SimError &e) {
            // Unlike a corrupt on-disk cache entry (demoted to a
            // recompile), a corrupt *upload* is the coordinator's
            // problem: installing nothing silently would turn the
            // one-compile-per-fleet guarantee into a quiet recompile.
            return reject(e.what());
        }
        artifacts.fetch_add(1, std::memory_order_relaxed);
        writeHttpResponse(fd, 200, "OK", "text/plain", "installed\n");
        ::close(fd);
        return;
    }

    // /artifact/ckpt: the body is dropped into the checkpoint
    // directory verbatim; CheckpointStore's own load path validates
    // magic/key/checksum on use (any defect demotes to fast-forward).
    const std::string dir = CheckpointStore::instance().directory();
    if (dir.empty())
        return reject("no checkpoint directory configured "
                      "(start the worker with --ckpt-cache)");
    const auto nameIt = req.headers.find("x-elfsim-name");
    if (nameIt == req.headers.end())
        return reject("missing x-elfsim-name header");
    const std::string name = safeArtifactName(nameIt->second);
    if (name.empty())
        return reject("empty artifact name");
    const std::string path = dir + "/" + name;
    const std::string tmp = path + ".tmp";
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        os.write(req.body.data(),
                 std::streamsize(req.body.size()));
        if (!os) {
            std::remove(tmp.c_str());
            return reject(errorf("cannot write '%s'", tmp.c_str()));
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return reject(errorf("cannot rename '%s'", tmp.c_str()));
    }
    artifacts.fetch_add(1, std::memory_order_relaxed);
    writeHttpResponse(fd, 200, "OK", "text/plain", "installed\n");
    ::close(fd);
}

void
SweepService::executorLoop()
{
    for (;;) {
        Pending p;
        {
            std::unique_lock<std::mutex> lk(queueMtx);
            queueCv.wait(lk, [this] {
                return !queue.empty() ||
                       stopping.load(std::memory_order_acquire);
            });
            if (queue.empty())
                return; // stopping; stop() flushes leftovers
            p = std::move(queue.front());
            queue.pop_front();
            currentCancel = p.cancel;
        }
        if (p.shard)
            executeShard(std::move(p));
        else
            executeSweep(std::move(p));
        {
            std::lock_guard<std::mutex> lk(queueMtx);
            currentCancel.reset();
        }
        if (stopping.load(std::memory_order_acquire))
            return;
    }
}

void
SweepService::executeSweep(Pending req)
{
    // The client may have hung up while queued; don't burn a sweep on
    // a stream nobody reads.
    if (peerGone(req.fd)) {
        ::close(req.fd);
        return;
    }

    ExpandedSweep ex;
    try {
        ex = expandSweep(req.spec);
    } catch (const SimError &e) {
        // validateSweepSpec passed at enqueue time, so this is rare
        // (e.g. a workload generator failure) — still pre-stream, so
        // a clean error response is possible.
        badRequests.fetch_add(1, std::memory_order_relaxed);
        writeHttpResponse(req.fd, 400, "Bad Request", "text/plain",
                          std::string(e.what()) + "\n");
        ::close(req.fd);
        return;
    }

    // The request's own policy applies, minus journaling: manifests
    // and resume are CLI-side concerns, and a remote spec must not be
    // able to scribble files onto the server. keep_going is forced:
    // strict mode lets a failing cell's exception escape run() and
    // skips the watchdog monitor that observes cancelFlag, so one
    // legal request could kill the daemon and defeat cancellation.
    SweepPolicy pol = req.spec.policy;
    pol.manifestPath.clear();
    pol.resume = false;
    pol.keepGoing = true;
    pol.cancelFlag = req.cancel;
    runner.setPolicy(std::move(pol));
    runner.setBaseSeed(req.spec.baseSeed);

    ChunkedResponse stream(req.fd);
    stream.header(200, "OK", "application/json");

    // Completed cells arrive in completion order; buffer them and
    // release the in-order prefix, so the accumulated stream is byte-
    // identical to writeResultsJson() over the merged results.
    std::ostringstream buf;
    ResultsStreamWriter writer(buf);
    std::mutex streamMtx;
    std::map<std::size_t, RunResult> held;
    std::size_t next = 0;

    const auto flushChunk = [&] {
        std::string out = buf.str();
        if (out.empty())
            return;
        buf.str(std::string());
        if (!stream.write(out))
            req.cancel->store(true, std::memory_order_release);
    };

    // The observer captures this frame's locals; it must be detached
    // before they go out of scope on *every* path, including a throw
    // from run() below.
    struct ObserverGuard
    {
        SweepService &svc;
        ~ObserverGuard()
        {
            svc.runner.setCellObserver(nullptr);
            svc.inflightCells.store(0, std::memory_order_release);
        }
    } observerGuard{*this};

    inflightCells.store(ex.jobs.size(), std::memory_order_release);
    runner.setCellObserver([&](std::size_t i, const RunResult &r) {
        std::lock_guard<std::mutex> lk(streamMtx);
        inflightCells.fetch_sub(1, std::memory_order_acq_rel);
        held.emplace(i, r);
        while (!held.empty() && held.begin()->first == next) {
            writer.add(held.begin()->second);
            held.erase(held.begin());
            ++next;
        }
        flushChunk();
    });

    try {
        runner.run(ex.jobs);
    } catch (const std::exception &e) {
        // Keep-going mode degrades per-cell failures, but pre-run
        // machinery (trace compilation, pool setup) can still throw.
        // The stream is already open, so no clean error response is
        // possible — truncate it (the client sees a framing error)
        // and keep the daemon alive for the next request.
        ELFSIM_WARN("sweep aborted before completion: %s", e.what());
        cellsFailed.fetch_add(1, std::memory_order_relaxed);
        ::close(req.fd);
        return;
    }

    {
        std::lock_guard<std::mutex> lk(streamMtx);
        writer.finish();
        flushChunk();
    }
    stream.finish();
    ::close(req.fd);

    for (const RunResult &r : runner.results()) {
        if (r.ok())
            cellsOk.fetch_add(1, std::memory_order_relaxed);
        else if (r.status == JobStatus::Cancelled)
            cellsCancelled.fetch_add(1, std::memory_order_relaxed);
        else
            cellsFailed.fetch_add(1, std::memory_order_relaxed);
    }
    sweeps.fetch_add(1, std::memory_order_relaxed);
    const SweepTiming &t = runner.timing();
    lastCellsPerSec.store(
        t.wallSeconds > 0 ? double(t.jobs) / t.wallSeconds : 0,
        std::memory_order_relaxed);
}

const ExpandedSweep &
SweepService::expandShardSpec(const SweepSpec &spec)
{
    std::ostringstream os;
    writeSweepSpec(os, spec);
    std::string text = os.str();
    if (text != cachedSpecText_) {
        cachedEx_ = expandSweep(spec);
        cachedSpecText_ = std::move(text);
    }
    return cachedEx_;
}

void
SweepService::executeShard(Pending req)
{
    if (peerGone(req.fd)) {
        ::close(req.fd);
        return;
    }

    const ExpandedSweep *ex = nullptr;
    try {
        ex = &expandShardSpec(req.spec);
        std::vector<char> seen(ex->jobs.size(), 0);
        for (std::size_t i : req.cells) {
            if (i >= ex->jobs.size())
                throw ConfigError(errorf(
                    "shard cell %zu out of range (grid has %zu)", i,
                    ex->jobs.size()));
            if (seen[i])
                throw ConfigError(
                    errorf("shard cell %zu selected twice", i));
            seen[i] = 1;
        }
    } catch (const SimError &e) {
        badRequests.fetch_add(1, std::memory_order_relaxed);
        writeHttpResponse(req.fd, 400, "Bad Request", "text/plain",
                          std::string(e.what()) + "\n");
        ::close(req.fd);
        return;
    }

    // Same forced policy as /sweep: journaling is the coordinator's
    // job (the shard stream IS the journal), keep_going protects the
    // executor thread.
    SweepPolicy pol = req.spec.policy;
    pol.manifestPath.clear();
    pol.resume = false;
    pol.keepGoing = true;
    pol.cancelFlag = req.cancel;
    runner.setPolicy(std::move(pol));
    runner.setBaseSeed(req.spec.baseSeed);

    ChunkedResponse stream(req.fd);
    std::mutex streamMtx;
    stream.header(200, "OK", "application/x-ndjson");

    // Unlike /sweep there is no in-order buffering: every line is
    // self-describing (global index + key), the coordinator does the
    // merge. Streaming in completion order is what lets it journal a
    // cell the moment any worker finishes it.
    const auto writeLine = [&](const std::string &line) {
        if (!stream.write(line))
            req.cancel->store(true, std::memory_order_release);
    };

    struct ObserverGuard
    {
        SweepService &svc;
        ~ObserverGuard()
        {
            svc.runner.setCellObserver(nullptr);
            svc.inflightCells.store(0, std::memory_order_release);
        }
    } observerGuard{*this};

    inflightCells.store(req.cells.size(), std::memory_order_release);
    runner.setCellObserver([&](std::size_t i, const RunResult &r) {
        std::ostringstream line;
        writeManifestLine(line,
                          ManifestEntry{
                              i, runner.jobKey(ex->jobs[i], i), r});
        std::lock_guard<std::mutex> lk(streamMtx);
        inflightCells.fetch_sub(1, std::memory_order_acq_rel);
        writeLine(line.str());
    });

    // Heartbeats keep the coordinator's lease timer (its SO_RCVTIMEO)
    // from firing between slow cells: silence now really does mean a
    // dead worker.
    std::mutex hbMtx;
    std::condition_variable hbCv;
    bool hbStop = false;
    std::thread heartbeat([&] {
        std::unique_lock<std::mutex> lk(hbMtx);
        for (;;) {
            if (hbCv.wait_for(
                    lk, std::chrono::milliseconds(cfg.heartbeatMs),
                    [&] { return hbStop; }))
                return;
            std::lock_guard<std::mutex> s(streamMtx);
            writeLine(dist::heartbeatLine());
        }
    });
    const auto stopHeartbeat = [&] {
        {
            std::lock_guard<std::mutex> lk(hbMtx);
            hbStop = true;
        }
        hbCv.notify_all();
        heartbeat.join();
    };

    try {
        runner.run(ex->jobs, req.cells);
    } catch (const std::exception &e) {
        stopHeartbeat();
        ELFSIM_WARN("shard aborted before completion: %s", e.what());
        cellsFailed.fetch_add(1, std::memory_order_relaxed);
        ::close(req.fd);
        return;
    }
    stopHeartbeat();

    {
        std::lock_guard<std::mutex> lk(streamMtx);
        writeLine(dist::doneLine(req.cells.size()));
    }
    stream.finish();
    ::close(req.fd);

    const std::vector<RunResult> &rs = runner.results();
    for (std::size_t i : req.cells) {
        const RunResult &r = rs[i];
        if (r.ok())
            cellsOk.fetch_add(1, std::memory_order_relaxed);
        else if (r.status == JobStatus::Cancelled)
            cellsCancelled.fetch_add(1, std::memory_order_relaxed);
        else
            cellsFailed.fetch_add(1, std::memory_order_relaxed);
    }
    shards.fetch_add(1, std::memory_order_relaxed);
    const SweepTiming &t = runner.timing();
    lastCellsPerSec.store(
        t.wallSeconds > 0 ? double(t.jobs) / t.wallSeconds : 0,
        std::memory_order_relaxed);
}

SweepService::Counters
SweepService::counters() const
{
    Counters c;
    c.requests = requests.load(std::memory_order_relaxed);
    c.badRequests = badRequests.load(std::memory_order_relaxed);
    c.sweeps = sweeps.load(std::memory_order_relaxed);
    c.shards = shards.load(std::memory_order_relaxed);
    c.artifacts = artifacts.load(std::memory_order_relaxed);
    c.cellsOk = cellsOk.load(std::memory_order_relaxed);
    c.cellsFailed = cellsFailed.load(std::memory_order_relaxed);
    c.cellsCancelled = cellsCancelled.load(std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lk(queueMtx);
        c.queueDepth = queue.size();
    }
    c.inflightCells = inflightCells.load(std::memory_order_relaxed);
    c.lastCellsPerSec = lastCellsPerSec.load(std::memory_order_relaxed);
    return c;
}

std::string
SweepService::statsJson() const
{
    const Counters c = counters();
    const TraceStats ts = TraceCache::instance().stats();
    const CkptStats ks = CheckpointStore::instance().stats();

    // Everything leaves through the uniform StatGroup walk, so the
    // document's shape matches every other stats export.
    stats::StatGroup service("service");
    service.addCounter("requests", "HTTP requests accepted") +=
        c.requests;
    service.addCounter("bad_requests", "4xx responses") +=
        c.badRequests;
    service.addCounter("sweeps", "sweep runs completed") += c.sweeps;
    service.addCounter("shards", "shard runs completed") += c.shards;
    service.addCounter("artifacts", "artifacts installed") +=
        c.artifacts;
    service.addCounter("cells_ok", "cells completed ok") += c.cellsOk;
    service.addCounter("cells_failed", "cells failed") +=
        c.cellsFailed;
    service.addCounter("cells_cancelled", "cells cancelled") +=
        c.cellsCancelled;
    service.addCounter("queue_depth", "sweeps waiting") +=
        c.queueDepth;
    service.addCounter("inflight_cells",
                       "cells of the running sweep not yet done") +=
        c.inflightCells;
    service.addFormula("cells_per_sec",
                       "throughput of the last finished sweep",
                       [&c] { return c.lastCellsPerSec; });

    stats::StatGroup trace("trace");
    trace.addCounter("compiles", "traces compiled") += ts.compiles;
    trace.addCounter("cache_hits", "trace-cache hits") += ts.cacheHits;
    trace.addCounter("cache_misses", "trace-cache misses") +=
        ts.cacheMisses;
    trace.addCounter("bytes_mapped", "trace bytes mapped") +=
        ts.bytesMapped;
    trace.addFormula("compile_seconds", "wall-clock spent compiling",
                     [&ts] { return ts.compileSeconds; });

    stats::StatGroup ckpt("ckpt");
    ckpt.addCounter("hits", "checkpoints restored") += ks.hits;
    ckpt.addCounter("misses", "checkpoint lookups missed") +=
        ks.misses;
    ckpt.addCounter("saves", "checkpoints written") += ks.saves;
    ckpt.addCounter("load_failures", "corrupt artifacts skipped") +=
        ks.loadFailures;
    ckpt.addCounter("bytes_read", "checkpoint bytes read") +=
        ks.bytesRead;
    ckpt.addCounter("bytes_written", "checkpoint bytes written") +=
        ks.bytesWritten;

    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject();
    w.field("schema", "elfsimd-stats-v1");
    w.key("service");
    stats::writeJson(w, service);
    w.key("trace");
    stats::writeJson(w, trace);
    w.key("ckpt");
    stats::writeJson(w, ckpt);
    w.endObject();
    os << '\n';
    return os.str();
}

} // namespace service
} // namespace elfsim
