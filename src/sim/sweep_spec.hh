/**
 * @file
 * Declarative sweep description: the data model every experiment grid
 * can be expressed in, serialized as the elfsim-sweepspec-v1 JSON
 * schema, and expanded into the exact std::vector<SweepJob> the bench
 * harnesses used to assemble by hand.
 *
 * Layering (DESIGN.md "Options -> SweepSpec -> grid"):
 *
 *   bench_util::Options   CLI flags; a thin adapter that fills a
 *                         bench's native SweepSpec (windows, policy)
 *   SweepSpec             the declarative description: workload
 *                         selectors x config rows (+ per-group window
 *                         overrides), run options, fault policy
 *   expandSweep()         materializes programs and the SweepJob grid
 *   SweepRunner           executes the grid
 *
 * The spec is pure data: parseSweepSpec/writeSweepSpec round-trip a
 * spec byte-exactly (canonical serialization always emits every
 * field), so a grid can be archived beside its results, shipped to
 * the elfsimd daemon, or re-run bit-identically later.
 *
 * JSON schema (validated by scripts/check_results.py --spec):
 *
 *   {
 *     "schema": "elfsim-sweepspec-v1",
 *     "name": "fig7",
 *     "jobs": 0,                  // sweep threads; 0 = auto
 *     "base_seed": 0,             // SweepRunner::setBaseSeed
 *     "run": { <RunOptions fields> },
 *     "policy": { <SweepPolicy fields> },
 *     "groups": [
 *       {
 *         "workloads": [
 *           {"name": "641.leela"},              // one catalog entry
 *           {"set": "catalog", "stride": 3},    // catalog / elf_relevant
 *           {"suite": "2K17 INT"},              // one catalog suite
 *           {"micro": "random_branch_loop",     // directed micro-program
 *            "args": [8, 0.5]},
 *           {"synthetic": "server_sweep",       // raw CFG generator
 *            "seed": 24129, "params": { <CfgParams fields> }}
 *         ],
 *         "configs": [
 *           {"variant": "DCF"},
 *           {"variant": "DCF", "label": "deep BP1->FE",
 *            "overrides": {"bp1_to_fe": 8}}
 *         ],
 *         "run": { ... }          // optional group-level override
 *       }
 *     ]
 *   }
 *
 * Expansion order is group-major, then workload-major, then
 * config-minor — exactly the nested loops the legacy benches ran, so
 * result indices (and jobKeys, and exported bytes) are unchanged.
 *
 * Errors: malformed JSON or an unknown field throws ParseError;
 * semantic problems (unknown workload/suite/knob, a contradictory
 * sampling schedule) throw ConfigError. The CLI maps both to the
 * uniform usage-error exit status 2.
 */

#ifndef ELFSIM_SIM_SWEEP_SPEC_HH
#define ELFSIM_SIM_SWEEP_SPEC_HH

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "common/json.hh"
#include "sim/config.hh"
#include "sim/sweep.hh"
#include "workload/builders.hh"

namespace elfsim {

/** Selects one or more programs for a sweep group. */
struct WorkloadSelector
{
    enum class Kind
    {
        Name,      ///< one catalog entry by name
        Set,       ///< "catalog" or "elf_relevant", with a stride
        Suite,     ///< every catalog entry of one suite
        Micro,     ///< a directed micro-program generator
        Synthetic, ///< raw CfgParams through generateCfg
    };

    Kind kind = Kind::Name;
    /** Catalog name / set name / suite name / micro generator name /
     *  synthetic program name, per kind. */
    std::string name;
    unsigned stride = 1;         ///< Set only: every Nth entry
    std::vector<double> args;    ///< Micro only: generator arguments
    CfgParams params;            ///< Synthetic only
    std::uint64_t seed = 1;      ///< Synthetic only

    static WorkloadSelector
    byName(std::string n)
    {
        WorkloadSelector s;
        s.kind = Kind::Name;
        s.name = std::move(n);
        return s;
    }

    static WorkloadSelector
    set(std::string setName, unsigned stride = 1)
    {
        WorkloadSelector s;
        s.kind = Kind::Set;
        s.name = std::move(setName);
        s.stride = stride ? stride : 1;
        return s;
    }

    static WorkloadSelector
    micro(std::string generator, std::vector<double> args)
    {
        WorkloadSelector s;
        s.kind = Kind::Micro;
        s.name = std::move(generator);
        s.args = std::move(args);
        return s;
    }

    static WorkloadSelector
    synthetic(std::string progName, const CfgParams &p,
              std::uint64_t seed)
    {
        WorkloadSelector s;
        s.kind = Kind::Synthetic;
        s.name = std::move(progName);
        s.params = p;
        s.seed = seed;
        return s;
    }
};

/** Typed value of one SimConfig knob override. */
struct SpecValue
{
    enum class Kind { U64, Real, Flag, Text };

    Kind kind = Kind::U64;
    std::uint64_t u = 0;
    double d = 0;
    bool b = false;
    std::string s;

    static SpecValue
    ofU64(std::uint64_t v)
    {
        SpecValue x;
        x.kind = Kind::U64;
        x.u = v;
        return x;
    }

    static SpecValue
    ofReal(double v)
    {
        SpecValue x;
        x.kind = Kind::Real;
        x.d = v;
        return x;
    }

    static SpecValue
    ofFlag(bool v)
    {
        SpecValue x;
        x.kind = Kind::Flag;
        x.b = v;
        return x;
    }

    static SpecValue
    ofText(std::string v)
    {
        SpecValue x;
        x.kind = Kind::Text;
        x.s = std::move(v);
        return x;
    }
};

/** One configuration row: a variant plus named knob overrides. */
struct ConfigSpec
{
    std::string label;  ///< display label (ablation tables); optional
    FrontendVariant variant = FrontendVariant::Dcf;
    std::vector<std::pair<std::string, SpecValue>> overrides;

    ConfigSpec() = default;

    explicit ConfigSpec(FrontendVariant v, std::string lbl = "")
        : label(std::move(lbl)), variant(v)
    {
    }

    ConfigSpec &
    setU64(std::string key, std::uint64_t v)
    {
        overrides.emplace_back(std::move(key), SpecValue::ofU64(v));
        return *this;
    }

    ConfigSpec &
    setReal(std::string key, double v)
    {
        overrides.emplace_back(std::move(key), SpecValue::ofReal(v));
        return *this;
    }

    ConfigSpec &
    setFlag(std::string key, bool v)
    {
        overrides.emplace_back(std::move(key), SpecValue::ofFlag(v));
        return *this;
    }

    ConfigSpec &
    setText(std::string key, std::string v)
    {
        overrides.emplace_back(std::move(key),
                               SpecValue::ofText(std::move(v)));
        return *this;
    }
};

/**
 * One grid block: every selected workload crossed with every config
 * row. A group may carry its own RunOptions (hasRun) — how
 * bench_throughput appends its sampled sub-grid with a different
 * window schedule.
 */
struct SweepGroup
{
    std::vector<WorkloadSelector> workloads;
    std::vector<ConfigSpec> configs;
    bool hasRun = false;
    RunOptions run; ///< used iff hasRun; else the spec-level options
};

/** A complete declarative sweep. */
struct SweepSpec
{
    std::string name;          ///< display/archive name ("fig7", ...)
    unsigned jobs = 0;         ///< sweep threads; 0 = auto
    std::uint64_t baseSeed = 0; ///< SweepRunner::setBaseSeed
    RunOptions run;            ///< default windows for every group
    SweepPolicy policy;
    std::vector<SweepGroup> groups;
};

/** A materialized spec: owned programs plus the grid they back. */
struct ExpandedSweep
{
    /** Program storage (deque: SweepJob keeps stable pointers). */
    std::deque<Program> programs;
    std::vector<SweepJob> jobs;
    /** Per-cell config label (ConfigSpec::label; "" when unset). */
    std::vector<std::string> labels;
};

/** Build a SimConfig from a config row; throws ConfigError on an
 *  unknown knob key or a type-mismatched value. */
SimConfig makeSpecConfig(const ConfigSpec &c);

/**
 * Apply one named knob override to @a cfg. The registry covers every
 * knob the experiment harnesses sweep (decoupling depth, FAQ/BTB
 * geometry, coupled predictor sizes, payload policy, divergence
 * capacity, extensions, rng seed); see sweep_spec.cc for the full
 * key list. Throws ConfigError on unknown keys or ill-typed values.
 */
void applySimKnob(SimConfig &cfg, const std::string &key,
                  const SpecValue &v);

/** Semantic validation (sampling schedule contradictions, empty
 *  groups, unknown workloads); throws ConfigError. */
void validateSweepSpec(const SweepSpec &spec);

/**
 * Materialize the spec into programs + jobs. Validates first, so a
 * bad spec throws (ConfigError) before any program is built.
 * Expansion is group-major / workload-major / config-minor.
 */
ExpandedSweep expandSweep(const SweepSpec &spec);

/** Parse a spec from its JSON document form. Unknown fields are
 *  ParseErrors; semantic problems are ConfigErrors. */
SweepSpec parseSweepSpec(const json::Value &doc);

/** Parse a spec from JSON text. */
SweepSpec parseSweepSpec(std::string_view text);

/** Load a spec from a file; throws IoError when unreadable. */
SweepSpec loadSweepSpec(const std::string &path);

/** Canonical serialization: always emits every run/policy field, so
 *  parse(write(x)) re-serializes byte-identically. */
void writeSweepSpec(std::ostream &os, const SweepSpec &spec);

/** writeSweepSpec to a file; throws IoError when unwritable. */
void saveSweepSpec(const std::string &path, const SweepSpec &spec);

/** Inverse of variantName(); false on an unknown name. */
bool parseVariantName(std::string_view name, FrontendVariant &out);

} // namespace elfsim

#endif // ELFSIM_SIM_SWEEP_SPEC_HH
