/**
 * @file
 * Distributed sweep coordinator: shards one SweepSpec grid across a
 * fleet of `elfsimd --worker` processes and merges the partial result
 * streams back into the exact result set — byte for byte — that a
 * single-process run of the same spec would produce.
 *
 * How the guarantee holds: expansion is deterministic, every worker
 * expands the same spec and runs only its cells with their *global*
 * indices preserved (SweepRunner's subset path), per-cell RunResult
 * JSON round trips byte-exactly, and the coordinator assembles the
 * final document in submission order. Scheduling — which worker ran
 * which cell, in what order, with how many lease expiries — cannot
 * leak into the output bytes.
 *
 * Scheduling is lease-based over the crash-safe ledger
 * (dist/ledger.hh): cells are handed out in contiguous chunks; each
 * chunk is journaled as leased before dispatch, its completions are
 * journaled as manifest lines the moment they stream back, and a
 * dead worker (torn connection, or heartbeat silence past the lease
 * timeout) gets its unfinished cells journaled as expired and
 * requeued for the survivors. A kill -9'd worker therefore costs the
 * fleet only its in-flight cells' work; the merged bytes do not
 * change. A coordinator crash loses nothing either: `resume` adopts
 * the ledger's completed cells (index + jobKey must match) and
 * re-runs the rest.
 *
 * Compile-once-per-fleet: before dispatching any shard, the
 * coordinator compiles each distinct full-run program trace once
 * (through its own TraceCache) and ships the elfsim-trace-v1 image to
 * every worker (POST /artifact/trace, content-hash validated), so
 * fleet-wide trace.compiles stays at one per distinct program instead
 * of one per program per worker. Sampled grids ship warm-state
 * checkpoints (elfsim-ckpt-v1) the same way.
 */

#ifndef ELFSIM_DIST_COORDINATOR_HH
#define ELFSIM_DIST_COORDINATOR_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/runner.hh"
#include "sim/sweep_spec.hh"

namespace elfsim {
namespace dist {

/** One worker address. */
struct WorkerEndpoint
{
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;

    std::string
    id() const
    {
        return host + ":" + std::to_string(port);
    }
};

/** Coordinator configuration. */
struct CoordinatorConfig
{
    std::vector<WorkerEndpoint> workers;

    /** Lease ledger path; empty disables journaling (no resume, no
     *  crash safety — fine for tests and throwaway runs). */
    std::string ledgerPath;

    /** Adopt completed cells recorded in ledgerPath (index and jobKey
     *  must both match) and run only the rest. */
    bool resume = false;

    /** Lease length: how long a shard stream may stay silent (no
     *  result, no heartbeat) before the worker is declared dead and
     *  the lease expires. Must exceed the workers' heartbeat period;
     *  it bounds detection latency, not cell runtime. */
    unsigned leaseSeconds = 30;

    /** Cells per lease; 0 picks pending / (4 * workers), floored at
     *  1 — small enough to rebalance, large enough to amortize the
     *  per-chunk spec re-send. */
    std::size_t chunkCells = 0;

    /** Chunk failures before a worker is retired from the fleet. */
    unsigned maxWorkerFailures = 3;

    /** Lease expiries before a cell stops being requeued and degrades
     *  to a failed result ("lease expired ... times"). */
    unsigned maxCellRetries = 3;
};

/** Scheduling counters of the last run() (not part of the merged
 *  output — the output must not depend on scheduling). */
struct CoordStats
{
    std::size_t cellsTotal = 0;
    std::size_t cellsAdopted = 0;  ///< taken from the resume ledger
    std::size_t cellsRun = 0;      ///< completed by the fleet
    std::size_t cellsSynthFailed = 0; ///< degraded by the coordinator
    std::size_t chunksDispatched = 0;
    std::size_t leasesExpired = 0;
    std::size_t workersDead = 0;
    std::size_t tracesShipped = 0; ///< trace uploads (per worker)
    std::size_t ckptsShipped = 0;  ///< checkpoint uploads (per worker)
    double wallSeconds = 0;

    double
    cellsPerSecond() const
    {
        return wallSeconds > 0 ? double(cellsRun) / wallSeconds : 0;
    }
};

/** The coordinator (see file comment). */
class SweepCoordinator
{
  public:
    explicit SweepCoordinator(CoordinatorConfig cfg);

    /**
     * Expand @a spec, shard it across the fleet, and return the
     * merged results in submission order. Cells no live worker could
     * complete come back as failed cells (keep-going semantics), so
     * run() itself only throws for pre-dispatch problems: an invalid
     * spec (ConfigError) or an unwritable ledger (IoError). A fleet
     * where *no* worker ever accepted work also throws IoError — that
     * is a deployment error, not a degraded sweep.
     */
    std::vector<RunResult> run(const SweepSpec &spec);

    const CoordStats &stats() const { return lastStats; }

    /** Test hook: invoked (serialized) as each chunk is leased, with
     *  the chunk's global indices and the worker id. */
    void
    setLeaseObserver(std::function<void(const std::vector<std::size_t> &,
                                        const std::string &)> fn)
    {
        leaseObserver = std::move(fn);
    }

  private:
    struct Fleet; ///< per-run shared state (coordinator.cc)

    void shipArtifacts(Fleet &fleet);
    void workerLoop(Fleet &fleet, std::size_t w);
    bool runChunk(Fleet &fleet, std::size_t w,
                  const std::vector<std::size_t> &chunk);

    CoordinatorConfig cfg;
    CoordStats lastStats;
    std::function<void(const std::vector<std::size_t> &,
                       const std::string &)> leaseObserver;
};

} // namespace dist
} // namespace elfsim

#endif // ELFSIM_DIST_COORDINATOR_HH
