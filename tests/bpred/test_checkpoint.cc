#include <gtest/gtest.h>

#include "bpred/checkpoint.hh"

using namespace elfsim;

TEST(CheckpointQueue, AllocateAndFind)
{
    CheckpointQueue q(8);
    const auto a = q.allocate(10);
    const auto b = q.allocate(20);
    EXPECT_TRUE(q.has(a));
    EXPECT_TRUE(q.has(b));
    EXPECT_NE(a, noCheckpoint);
    EXPECT_NE(a, b);
}

TEST(CheckpointQueue, FullBlocksAllocation)
{
    CheckpointQueue q(2);
    q.allocate(1);
    q.allocate(2);
    EXPECT_TRUE(q.full());
}

TEST(CheckpointQueue, RetireFreesHead)
{
    CheckpointQueue q(2);
    const auto a = q.allocate(1);
    q.allocate(2);
    q.retireUpTo(1);
    EXPECT_FALSE(q.full());
    EXPECT_FALSE(q.has(a));
    q.allocate(3);
    EXPECT_TRUE(q.full());
}

TEST(CheckpointQueue, SquashDropsTailAndReusesIds)
{
    CheckpointQueue q(8);
    const auto a = q.allocate(10);
    const auto b = q.allocate(20);
    const auto c = q.allocate(30);
    q.squashYoungerThan(15);
    EXPECT_TRUE(q.has(a));
    EXPECT_FALSE(q.has(b));
    EXPECT_FALSE(q.has(c));
    // Fresh allocation after squash remains findable.
    const auto d = q.allocate(16);
    EXPECT_TRUE(q.has(d));
    EXPECT_TRUE(q.has(a));
}

TEST(CheckpointQueue, PayloadPendingLifecycle)
{
    CheckpointQueue q(8);
    const auto a = q.allocate(10, /*payload_valid=*/false);
    EXPECT_TRUE(q.has(a));
    EXPECT_FALSE(q.payloadReady(a));
    q.fillPayload(a);
    EXPECT_TRUE(q.payloadReady(a));
}

TEST(CheckpointQueue, FillPayloadsUpToSeq)
{
    CheckpointQueue q(8);
    const auto a = q.allocate(10, false);
    const auto b = q.allocate(20, false);
    const auto c = q.allocate(30, false);
    q.fillPayloadsUpTo(20);
    EXPECT_TRUE(q.payloadReady(a));
    EXPECT_TRUE(q.payloadReady(b));
    EXPECT_FALSE(q.payloadReady(c));
}

TEST(CheckpointQueue, MixedRetireSquashStress)
{
    CheckpointQueue q(16);
    std::vector<std::uint64_t> live;
    SeqNum seq = 0;
    for (int round = 0; round < 50; ++round) {
        while (!q.full())
            live.push_back(q.allocate(++seq));
        q.retireUpTo(seq - 8);
        q.squashYoungerThan(seq - 4);
        seq = seq - 4;
        live.clear();
        // Queue must stay internally consistent: allocate works.
        const auto id = q.allocate(++seq);
        EXPECT_TRUE(q.has(id));
    }
}
