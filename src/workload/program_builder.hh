/**
 * @file
 * Symbolic builder for synthetic programs.
 *
 * Blocks are created in layout order and referenced by index;
 * terminator targets may forward-reference blocks that are created
 * later. finalize() lays the image out contiguously from the code
 * base, resolves block indices to addresses, and registers behaviour
 * specs.
 */

#ifndef ELFSIM_WORKLOAD_PROGRAM_BUILDER_HH
#define ELFSIM_WORKLOAD_PROGRAM_BUILDER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "workload/behavior.hh"
#include "workload/program.hh"

namespace elfsim {

/** Builds a Program from symbolic blocks. */
class ProgramBuilder
{
  public:
    explicit ProgramBuilder(Addr code_base = defaultCodeBase)
        : base(code_base)
    {}

    /** Start a new block (becomes "current"); returns its index. */
    std::uint32_t beginBlock();

    /** @return the index the next beginBlock() call will return. */
    std::uint32_t nextBlockIndex() const
    {
        return static_cast<std::uint32_t>(blocks.size());
    }

    /** Append a non-memory, non-branch instruction to current block. */
    void addOp(InstClass cls, RegIndex dst = numArchRegs,
               RegIndex src0 = numArchRegs, RegIndex src1 = numArchRegs);

    /** Append a load with the given address behaviour. */
    void addLoad(const MemSpec &spec, RegIndex dst = numArchRegs,
                 RegIndex addr_src = numArchRegs);

    /** Append a store with the given address behaviour. */
    void addStore(const MemSpec &spec, RegIndex data_src = numArchRegs,
                  RegIndex addr_src = numArchRegs);

    /** Append @a n single-cycle ALU filler instructions. */
    void addFiller(unsigned n);

    /** End current block with a conditional branch to @a target_block. */
    void endCond(const CondSpec &spec, std::uint32_t target_block);

    /** End current block with an unconditional direct jump. */
    void endJump(std::uint32_t target_block);

    /** End current block with a direct call. */
    void endCall(std::uint32_t target_block);

    /** End current block with an indirect jump over candidate blocks. */
    void endIndirectJump(const IndirectSpec &proto,
                         std::vector<std::uint32_t> target_blocks);

    /** End current block with an indirect call over candidate blocks. */
    void endIndirectCall(const IndirectSpec &proto,
                         std::vector<std::uint32_t> target_blocks);

    /** End current block with a return. */
    void endReturn();

    /** End current block with no branch (falls into the next block). */
    void endFallthrough();

    /** Number of instructions added so far (including terminators). */
    InstCount instCount() const;

    /**
     * Lay out and produce the program.
     *
     * @param name Program name (for reports).
     * @param entry_block Block index where execution starts.
     */
    Program finalize(std::string name, std::uint32_t entry_block = 0);

  private:
    enum class TermKind : std::uint8_t {
        Open,         ///< block still accepting instructions
        Fallthrough,
        Cond,
        Jump,
        Call,
        IndJump,
        IndCall,
        Return,
    };

    struct SymInst
    {
        InstClass cls;
        RegIndex dst;
        RegIndex src0;
        RegIndex src1;
        bool hasMem = false;
        MemSpec mem{};
    };

    struct SymBlock
    {
        std::vector<SymInst> body;
        TermKind term = TermKind::Open;
        CondSpec cond{};
        IndirectSpec indirect{};
        std::vector<std::uint32_t> targets;
    };

    SymBlock &current();
    void endBlock(TermKind kind);

    Addr base;
    std::vector<SymBlock> blocks;
    bool blockOpen = false;
};

} // namespace elfsim

#endif // ELFSIM_WORKLOAD_PROGRAM_BUILDER_HH
