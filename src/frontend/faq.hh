/**
 * @file
 * Fetch Address Queue: the decoupling queue between branch prediction
 * and instruction retrieval (paper Figure 1, "FAQ" stage; 32 entries
 * in Table II).
 */

#ifndef ELFSIM_FRONTEND_FAQ_HH
#define ELFSIM_FRONTEND_FAQ_HH

#include <array>
#include <cstdint>

#include "bpred/ittage.hh"
#include "bpred/tage.hh"
#include "btb/btb_entry.hh"
#include "common/queue.hh"
#include "common/types.hh"

namespace elfsim {

/** Why a FAQ block ended (carried for ELF resynchronization). */
enum class FaqBlockEnd : std::uint8_t {
    Sequential,  ///< sequenced to the next block (fall-through)
    TakenBranch, ///< a predicted-taken branch terminates the block
};

/** Per-branch info inside a FAQ block (mirrors the BTB slots). */
struct FaqBranch
{
    bool valid = false;
    std::uint8_t offset = 0;        ///< instruction offset in block
    BranchKind kind = BranchKind::None;
    bool predTaken = false;
    Addr target = invalidAddr;      ///< predicted target if taken
    TagePrediction tagePred;        ///< conditional prediction
    IttagePrediction ittagePred;    ///< indirect prediction
};

/** One block of fetch addresses produced by the DCF. */
struct FaqEntry
{
    /** BP1 cycle that generated this block; the fetcher may consume
     *  it from genCycle + (BP1->FE latency) onwards. */
    Cycle genCycle = 0;
    Addr startPC = invalidAddr;
    std::uint8_t numInsts = 0;     ///< instructions the fetcher should
                                   ///< consume from startPC
    bool fromBtbMiss = false;      ///< sequential guess (no BTB info)
    FaqBlockEnd endCause = FaqBlockEnd::Sequential;
    Addr nextPC = invalidAddr;     ///< predicted successor block
    std::array<FaqBranch, btbMaxBranches> branches{};

    /** The branch slot covering instruction @a offset, or nullptr. */
    const FaqBranch *
    branchAt(unsigned offset) const
    {
        for (const FaqBranch &b : branches) {
            if (b.valid && b.offset == offset)
                return &b;
        }
        return nullptr;
    }

    /** The predicted-taken branch that ends the block, or nullptr. */
    const FaqBranch *
    takenBranch() const
    {
        if (endCause != FaqBlockEnd::TakenBranch)
            return nullptr;
        for (const FaqBranch &b : branches) {
            if (b.valid && b.predTaken)
                return &b;
        }
        return nullptr;
    }

    /**
     * Drop the first @a n instructions of the block (they were
     * already fetched in coupled mode; ELF resynchronization adjusts
     * the entry before decoupled mode resumes from it).
     */
    void
    advance(unsigned n)
    {
        if (n == 0)
            return;
        startPC += instsToBytes(n);
        numInsts = n >= numInsts ? 0
                                 : static_cast<std::uint8_t>(
                                       numInsts - n);
        for (FaqBranch &b : branches) {
            if (!b.valid)
                continue;
            if (b.offset < n)
                b.valid = false;
            else
                b.offset = static_cast<std::uint8_t>(b.offset - n);
        }
    }
};

/** The fetch address queue. */
class Faq
{
  public:
    explicit Faq(std::size_t entries = 32) : q(entries) {}

    bool empty() const { return q.empty(); }
    bool full() const { return q.full(); }
    std::size_t size() const { return q.size(); }
    std::size_t capacity() const { return q.capacity(); }

    void push(FaqEntry e) { q.push(std::move(e)); }
    FaqEntry pop() { return q.pop(); }
    FaqEntry &front() { return q.front(); }
    const FaqEntry &front() const { return q.front(); }
    const FaqEntry &at(std::size_t i) const { return q.at(i); }
    FaqEntry &at(std::size_t i) { return q.at(i); }
    void clear() { q.clear(); }

  private:
    BoundedQueue<FaqEntry> q;
};

} // namespace elfsim

#endif // ELFSIM_FRONTEND_FAQ_HH
