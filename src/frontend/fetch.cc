#include "frontend/fetch.hh"

#include "common/logging.hh"

namespace elfsim {

DecoupledFetchEngine::DecoupledFetchEngine(const FetchParams &params,
                                           MemHierarchy &mem,
                                           InstSupply &supply, Faq &faq,
                                           CheckpointQueue &ckpts)
    : params(params), mem(mem), supply(supply), faq(faq), ckpts(ckpts)
{
}

void
DecoupledFetchEngine::redirect(Cycle now)
{
    offsetInEntry = 0;
    busyUntil = now; // the in-flight access is squashed
}

void
bindPrediction(DynInst &di, const FaqBranch *fb, bool btb_covered)
{
    di.btbCovered = btb_covered;
    // The DCF pushed a speculative-history bit exactly for the
    // branches it saw in BTB slots.
    di.historyPushed = fb != nullptr;

    if (fb) {
        di.hasPrediction = true;
        di.predTaken = fb->predTaken;
        di.predTarget =
            fb->predTaken ? fb->target : di.si->nextPC();
        di.tagePred = fb->tagePred;
        di.ittagePred = fb->ittagePred;
    } else {
        // No explicit prediction: the front-end implicitly continued
        // sequentially.
        di.hasPrediction = false;
        di.predTaken = false;
        di.predTarget = di.si->nextPC();
    }

    if (!di.si->isBranchInst()) {
        di.mispredict = false;
        return;
    }

    if (di.wrongPath) {
        // Wrong-path branches resolve to their prediction: the model
        // does not follow nested wrong-path redirects.
        di.taken = di.predTaken;
        di.actualNext = di.predTarget;
        di.mispredict = false;
        return;
    }

    di.mispredict = (di.taken != di.predTaken) ||
                    (di.taken && di.actualNext != di.predTarget);
}

unsigned
DecoupledFetchEngine::tick(Cycle now, Cycle faq_ready_cycle,
                           FetchBundle &out)
{
    if (now < busyUntil) {
        ++st.icacheStallCycles;
        return 0;
    }

    unsigned produced = 0;
    // Up to two distinct lines per cycle, in different interleaves.
    Addr linesUsed[2] = {invalidAddr, invalidAddr};
    unsigned numLines = 0;
    const unsigned lineBytes = mem.l0i().config().lineBytes;
    bool crossedTaken = false;

    while (produced < params.width) {
        if (faq.empty() ||
            faq.front().genCycle + faq_ready_cycle > now) {
            // Empty, or the head block is still in flight through
            // BP2/FAQ (models the BP1->FE pipeline depth).
            if (produced == 0)
                ++st.faqEmptyCycles;
            break;
        }

        FaqEntry &entry = faq.front();
        const Addr pc = entry.startPC + instsToBytes(offsetInEntry);
        const Addr line = pc / lineBytes;

        // Line/interleave constraints.
        bool known = false;
        for (unsigned i = 0; i < numLines; ++i)
            known |= linesUsed[i] == line;
        if (!known) {
            if (numLines == 2)
                break;
            if (numLines == 1 &&
                mem.l0i().bank(line * lineBytes) ==
                    mem.l0i().bank(linesUsed[0] * lineBytes))
                break;
            const Cycle lat = mem.instFetch(pc, now);
            if (lat > mem.l0i().config().hitLatency) {
                // L0I miss: fetch stalls until the fill arrives.
                busyUntil = now + lat;
                break;
            }
            linesUsed[numLines++] = line;
            if (crossedTaken)
                ++st.takenCrossFetches;
        }

        // Checkpoint capacity: be conservative, branches are frequent.
        if (ckpts.full())
            break;

        DynInst di = supply.make(pc, now, FetchMode::Decoupled);
        di.fetchBlockPC = entry.startPC;
        const FaqBranch *fb = entry.branchAt(offsetInEntry);
        bindPrediction(di, fb, !entry.fromBtbMiss);

        if (di.isBranch())
            di.checkpointId = ckpts.allocate(di.seq, true);

        ++produced;
        ++st.insts;
        if (di.wrongPath)
            ++st.wrongPathInsts;

        const bool endsBlock = offsetInEntry + 1 == entry.numInsts;
        const bool takenEnd =
            endsBlock && entry.endCause == FaqBlockEnd::TakenBranch;
        out.push_back(std::move(di));

        if (endsBlock) {
            faq.pop();
            offsetInEntry = 0;
            // Fetching across a taken branch in the same cycle is
            // only possible when the target block is queued and its
            // line falls in the other interleave (checked above on
            // the next iteration).
            crossedTaken = takenEnd;
        } else {
            ++offsetInEntry;
        }
    }
    return produced;
}

} // namespace elfsim
