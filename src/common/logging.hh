/**
 * @file
 * Error/status reporting helpers, following the gem5 fatal/panic split.
 *
 * panic() is for simulator bugs (aborts); fatal() is for user errors
 * (clean exit); warn()/inform() print status without stopping.
 */

#ifndef ELFSIM_COMMON_LOGGING_HH
#define ELFSIM_COMMON_LOGGING_HH

#include <cstdarg>
#include <string>

namespace elfsim {

/** Print a formatted message and abort(); use for simulator bugs. */
[[noreturn]] void panicImpl(const char *file, int line, const char *fmt, ...);

/** Print a formatted message and exit(1); use for user errors. */
[[noreturn]] void fatalImpl(const char *file, int line, const char *fmt, ...);

/** Print a formatted warning to stderr. */
void warnImpl(const char *fmt, ...);

/** Print a formatted informational message to stderr. */
void informImpl(const char *fmt, ...);

} // namespace elfsim

#define ELFSIM_PANIC(...) \
    ::elfsim::panicImpl(__FILE__, __LINE__, __VA_ARGS__)

#define ELFSIM_FATAL(...) \
    ::elfsim::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)

#define ELFSIM_WARN(...) ::elfsim::warnImpl(__VA_ARGS__)

#define ELFSIM_INFORM(...) ::elfsim::informImpl(__VA_ARGS__)

/** Panic with a formatted message if a simulator invariant fails. */
#define ELFSIM_ASSERT(cond, ...)                                          \
    do {                                                                  \
        if (!(cond)) {                                                    \
            ::elfsim::warnImpl("assertion (" #cond ") failed");           \
            ::elfsim::panicImpl(__FILE__, __LINE__, __VA_ARGS__);         \
        }                                                                 \
    } while (0)

#endif // ELFSIM_COMMON_LOGGING_HH
