/**
 * @file
 * Ablation study of ELF's design choices (DESIGN.md's per-experiment
 * index calls these out; the paper discusses each):
 *
 *  1. Checkpoint payload policy (Section IV-D1): populate payloads
 *     from FAQ information (proposed) vs. wait for the ROB head
 *     (simple) vs. idealized free checkpoints.
 *  2. The COND-ELF saturation filter (Section VI-B): speculate only
 *     past saturated bimodal counters, or always.
 *  3. Coupled bimodal size (the paper limits it to 2K x 3-bit).
 *  4. Divergence-tracking capacity (64-entry bitvectors / 16-entry
 *     target queues in Table II).
 *  5. FAQ depth (32 in Table II).
 */

#include <string>
#include <vector>

#include "bench_util.hh"

using namespace elfsim;

int
main(int argc, char **argv)
{
    const bench::Options opt = bench::parseOptions(argc, argv);
    bench::banner("Ablations — ELF design choices",
                  "U-ELF IPC relative to the default U-ELF "
                  "configuration, on the high-MPKI MCTS proxy");

    const WorkloadSpec *w = findWorkload("641.leela");
    Program p = buildWorkload(*w);

    const SimConfig base = makeConfig(FrontendVariant::UElf);

    struct Row
    {
        std::string label;
        SimConfig cfg;
    };
    std::vector<Row> rows;
    rows.push_back({"U-ELF (default)", base});
    rows.push_back({"DCF baseline", makeConfig(FrontendVariant::Dcf)});
    {
        SimConfig c = base;
        c.payloadPolicy = PayloadPolicy::RobHead;
        rows.push_back(
            {"payloads wait for ROB head (IV-D1 baseline)", c});
    }
    {
        SimConfig c = base;
        c.payloadPolicy = PayloadPolicy::Ideal;
        rows.push_back({"idealized free checkpoints", c});
    }
    {
        SimConfig c = base;
        c.condElfRequireSaturation = false;
        rows.push_back({"no saturation filter (speculate always)", c});
    }
    {
        SimConfig c = base;
        c.coupledPreds.bimodal.entries = 8192;
        rows.push_back({"4x coupled bimodal (8K entries)", c});
    }
    {
        SimConfig c = base;
        c.coupledPreds.bimodal.entries = 512;
        rows.push_back({"1/4 coupled bimodal (512)", c});
    }
    {
        SimConfig c = base;
        c.divergence.vecEntries = 16;
        c.divergence.targetEntries = 4;
        rows.push_back(
            {"1/4 divergence tracking (16-entry vectors)", c});
    }
    {
        SimConfig c = base;
        c.faqEntries = 8;
        rows.push_back({"shallow FAQ (8 entries)", c});
    }
    {
        SimConfig c = base;
        c.faqEntries = 128;
        rows.push_back({"deep FAQ (128 entries)", c});
    }
    {
        SimConfig c = base;
        c.coupledPreds.condKind = CoupledCondKind::Gshare;
        rows.push_back({"extension: gshare coupled predictor", c});
    }
    {
        SimConfig c = base;
        c.decodeBtbFill = true;
        rows.push_back(
            {"extension: decode-time BTB fill (Boomerang)", c});
    }

    std::vector<SweepJob> grid;
    for (const Row &row : rows) {
        SweepJob j;
        j.program = &p;
        j.cfg = row.cfg;
        j.opts = opt.runOptions();
        grid.push_back(j);
    }

    SweepRunner runner(opt.jobs);
    bench::applyFaultPolicy(runner, opt);
    const std::vector<RunResult> res = runner.run(grid);
    const double baseIpc = res[0].ipc;

    std::printf("%-44s %10s\n", "configuration", "rel. IPC");
    for (std::size_t i = 0; i < rows.size(); ++i)
        std::printf("%-44s %10.3f\n", rows[i].label.c_str(),
                    res[i].ipc / baseIpc);
    bench::exportResults(opt, runner);
    bench::printSweepTiming(runner);
    return bench::exitCode(runner);
}
