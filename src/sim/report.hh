/**
 * @file
 * End-of-run reporting. One shared stat-walk enumerates every
 * headline metric and component counter of a core exactly once
 * (walkSummary / walkFullReport); pluggable Reporter backends render
 * that walk as aligned human-readable text (TextReporter) or as a
 * machine-readable JSON document (JsonReporter). The legacy
 * printSummary/printFullReport free functions remain as thin
 * deprecated wrappers over TextReporter.
 */

#ifndef ELFSIM_SIM_REPORT_HH
#define ELFSIM_SIM_REPORT_HH

#include <ostream>
#include <string>

#include "sim/core.hh"

namespace elfsim {

/**
 * Row-stream consumer for the shared core-report walk. Sections
 * arrive as stable keys ("summary", "frontend", "btb", "memory",
 * "backend"); rows carry the display label, the value, and an
 * optional unit. Whole component StatGroups (the memory hierarchy
 * levels) arrive via group().
 */
class ReportVisitor
{
  public:
    virtual ~ReportVisitor() = default;

    virtual void beginSection(const std::string &key) = 0;
    virtual void row(const std::string &label, double value,
                     const std::string &unit = "") = 0;
    virtual void rowCount(const std::string &label, std::uint64_t value,
                          const std::string &unit = "") = 0;
    virtual void group(const stats::StatGroup &g) = 0;
};

/** Walk the headline metrics (IPC, MPKI, flushes, ELF state). */
void walkSummary(const Core &core, ReportVisitor &v);

/** Walk the headline metrics plus every component's counters. */
void walkFullReport(const Core &core, ReportVisitor &v);

/** Renders a core's end-of-run report in some output format. */
class Reporter
{
  public:
    virtual ~Reporter() = default;

    /** Headline metrics only. */
    virtual void summary(std::ostream &os, const Core &core) const = 0;

    /** Headline metrics + full per-component dump. */
    virtual void fullReport(std::ostream &os,
                            const Core &core) const = 0;
};

/** The classic aligned-text report (byte-compatible with the old
 *  printSummary/printFullReport output). */
class TextReporter : public Reporter
{
  public:
    void summary(std::ostream &os, const Core &core) const override;
    void fullReport(std::ostream &os, const Core &core) const override;
};

/**
 * Machine-readable report: one elfsim-report-v1 JSON document, with
 * a "sections" object mapping each section key to {label: value}
 * pairs and the memory hierarchy's StatGroups serialized losslessly.
 */
class JsonReporter : public Reporter
{
  public:
    void summary(std::ostream &os, const Core &core) const override;
    void fullReport(std::ostream &os, const Core &core) const override;
};

/** @deprecated Use TextReporter::summary. */
void printSummary(std::ostream &os, const Core &core);

/** @deprecated Use TextReporter::fullReport. */
void printFullReport(std::ostream &os, const Core &core);

} // namespace elfsim

#endif // ELFSIM_SIM_REPORT_HH
