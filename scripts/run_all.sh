#!/usr/bin/env bash
# Build, test, and regenerate every experiment.
#
#   scripts/run_all.sh                  # full experiment windows
#   scripts/run_all.sh --quick          # quarter-size windows (smoke)
#   scripts/run_all.sh --jobs 8         # sweep threads per bench
#
# Sweep thread count: --jobs N beats $ELFSIM_JOBS beats nproc.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${ELFSIM_JOBS:-$(nproc 2>/dev/null || echo 1)}"
EXTRA=()
while [ $# -gt 0 ]; do
    case "$1" in
        --jobs)
            JOBS="$2"
            shift 2
            ;;
        *)
            EXTRA+=("$1")
            shift
            ;;
    esac
done

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

for b in build/bench/*; do
    [ -x "$b" ] && [ -f "$b" ] || continue
    echo "######## $b"
    case "$(basename "$b")" in
        bench_micro_components)
            # google-benchmark binary: rejects unknown flags.
            "$b"
            ;;
        *)
            "$b" --jobs "$JOBS" ${EXTRA[@]+"${EXTRA[@]}"}
            ;;
    esac
done
