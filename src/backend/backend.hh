/**
 * @file
 * Simplified out-of-order back-end: rename/dispatch delay pipe, ROB,
 * issue queue with FU pools, load/store queue with speculative
 * memory disambiguation, and in-order commit.
 *
 * Renaming is idealized (the PRF bounds in-flight producers, WAR/WAW
 * never stall); dependencies flow through architectural registers via
 * a producer scoreboard that is rebuilt exactly on squash.
 */

#ifndef ELFSIM_BACKEND_BACKEND_HH
#define ELFSIM_BACKEND_BACKEND_HH

#include <functional>
#include <vector>

#include "backend/mem_dep.hh"
#include "cache/hierarchy.hh"
#include "common/queue.hh"
#include "common/types.hh"
#include "frontend/pipeline_types.hh"

namespace elfsim {

/** Back-end parameters (defaults = paper Table II). */
struct BackendParams
{
    unsigned robEntries = 256;
    unsigned iqEntries = 128;
    unsigned lsqEntries = 128;
    unsigned dispatchWidth = 8;  ///< fetch-through-rename width
    unsigned issueWidth = 9;
    unsigned commitWidth = 9;
    unsigned numAlu = 4;        ///< incl. the 2 mul/div-capable ones
    unsigned numMulDiv = 2;
    unsigned numLdSt = 2;
    unsigned numSimd = 2;
    unsigned numStData = 1;
    Cycle decodeToDispatch = 3;  ///< DEC -> IQ insertion (REN/REN/DISP)
    Cycle issueToExec = 3;       ///< issue selection -> EXE stage
    Cycle mulLatency = 3;
    Cycle divLatency = 12;
    Cycle fpLatency = 3;
};

/** Back-end statistics. */
struct BackendStats
{
    std::uint64_t committed = 0;        ///< committed instructions
    std::uint64_t committedBranches = 0;
    std::uint64_t condMispredicts = 0;  ///< committed direction misses
    std::uint64_t targetMispredicts = 0;
    std::uint64_t memOrderFlushes = 0;
    std::uint64_t robFullCycles = 0;
    std::uint64_t coupledCommitted = 0; ///< committed insts fetched in
                                        ///< coupled mode
};

/**
 * The out-of-order back-end. The core pushes decoded instructions in
 * program order; the back-end reports branch resolutions and memory
 * order violations as redirect requests and retires instructions
 * through a commit callback.
 */
class Backend
{
  public:
    /** Called once per committed instruction, in program order. */
    using CommitHook = std::function<void(const DynInst &)>;

    Backend(const BackendParams &params, MemHierarchy &mem,
            MemDepPredictor &mdp);

    /** @return true iff the back-end can accept @a n more insts. */
    bool canAccept(unsigned n) const;

    /** Accept one decoded instruction (program order). */
    void accept(DynInst di, Cycle now);

    /**
     * Advance one cycle: dispatch, issue, execute completions, and
     * commit. Branch mispredictions / order violations discovered
     * this cycle are merged into @a redirect if older than what it
     * already holds.
     */
    void tick(Cycle now, Redirect &redirect);

    /**
     * Squash every instruction younger than @a survivor_seq and
     * rebuild the producer scoreboard.
     */
    void squashYoungerThan(SeqNum survivor_seq);

    /** Program-order scan of in-flight instructions (for history
     *  replay on flush). Includes the rename pipe. */
    template <typename Fn>
    void
    forEachInFlight(Fn &&fn) const
    {
        rob.forEach([&](const DynInst &di) { fn(di); });
        renamePipe.forEach([&](const DynInst &di) { fn(di); });
    }

    /** Set the commit callback. */
    void setCommitHook(CommitHook hook) { commitHook = std::move(hook); }

    /** @return true iff a redirect for @a seq may be applied now
     *  (ELF: checkpoint payload pending delays it unless the
     *  instruction reached the ROB head). */
    bool atRobHead(SeqNum seq) const;

    /** Mutable lookup across the ROB and the rename pipe (used to
     *  apply ELF prediction patches and pending-flush marks). */
    DynInst *findInFlightMutable(SeqNum seq);

    std::size_t robSize() const { return rob.size() + renamePipe.size(); }
    bool empty() const { return rob.empty() && renamePipe.empty(); }

    /** Oldest in-flight instruction, or nullptr. */
    const DynInst *robHead() const { return rob.empty() ? nullptr : &rob.front(); }
    std::size_t iqSize() const { return iq.size(); }
    std::size_t lsqSize() const { return lsq.size(); }
    std::size_t renamePipeSize() const { return renamePipe.size(); }

    const BackendStats &stats() const { return st; }
    const BackendParams &config() const { return params; }

    /** Overwrite the cumulative statistics (warm-state restore; the
     *  pipeline itself is empty at every checkpoint boundary). */
    void restoreStats(const BackendStats &stats) { st = stats; }

  private:
    /**
     * IQ/LSQ entry: the instruction's seq plus its stable ROB ring
     * position — the O(1) seq→slot index that replaces the per-entry
     * binary search over the ROB. The position is validated against
     * the slot's seq on use (see DynInst::srcPos0).
     */
    struct SeqSlot
    {
        SeqNum seq = 0;
        std::uint32_t pos = 0;
    };

    /**
     * Scheduled completion of an issued instruction. Events are kept
     * in a min-heap on @a cycle so complete() touches only the
     * instructions finishing this cycle instead of scanning the whole
     * ROB. Squashes leave stale events behind; an event is validated
     * against the live ROB slot (position liveness + seq identity +
     * completeCycle) before it fires, so ghosts of squashed — or
     * squashed-and-replayed — instructions are simply dropped.
     */
    struct CompletionEvent
    {
        Cycle cycle = 0;
        SeqNum seq = 0;
        std::uint32_t pos = 0;
    };

    /** Heap comparator: std::*_heap max-heaps on it, so "later cycle
     *  sorts down" yields a min-heap on completion cycle. */
    static bool laterCycle(const CompletionEvent &a,
                           const CompletionEvent &b);

    void dispatch(Cycle now);
    void issue(Cycle now, Redirect &redirect);
    void complete(Cycle now, Redirect &redirect);
    void commit(Cycle now);
    void rebuildScoreboard();

    DynInst *findBySeq(SeqNum seq);
    const DynInst *findBySeq(SeqNum seq) const;
    bool sourcesReady(const DynInst &di) const;
    Cycle execLatency(const DynInst &di, Cycle now);

    BackendParams params;
    MemHierarchy &mem;
    MemDepPredictor &mdp;
    CommitHook commitHook;

    BoundedQueue<DynInst> renamePipe; ///< decode -> dispatch delay
    BoundedQueue<DynInst> rob;        ///< program order, stable slots
    std::vector<SeqSlot> iq;          ///< waiting/unissued, in order
    std::vector<SeqSlot> lsq;         ///< loads+stores in flight

    /** Pending completions, min-heap on cycle (std::*_heap). */
    std::vector<CompletionEvent> compHeap;
    /** Events due this cycle, sorted to ROB (seq) order. Member so
     *  the per-tick batch never allocates in steady state. */
    std::vector<CompletionEvent> compDue;

    /** Producer scoreboard per architectural register: seq and ROB
     *  ring position of the last writer. */
    std::vector<SeqNum> lastProducer;
    std::vector<std::uint32_t> lastProducerPos;

    BackendStats st;
};

} // namespace elfsim

#endif // ELFSIM_BACKEND_BACKEND_HH
