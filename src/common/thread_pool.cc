#include "common/thread_pool.hh"

#include <utility>

#include "common/logging.hh"

namespace elfsim {

unsigned
ThreadPool::hardwareThreads()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

ThreadPool::ThreadPool(unsigned n)
{
    if (n == 0)
        n = hardwareThreads();
    nThreads = n;
    workers.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        workers.push_back(std::make_unique<Worker>());
    // Everything workers touch is in place; spawning last keeps the
    // construction loop race-free.
    threads.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        threads.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    try {
        wait();
    } catch (const std::exception &e) {
        // A destructor cannot propagate; callers that care call
        // wait() themselves first.
        ELFSIM_WARN("thread pool task failed: %s", e.what());
    }
    {
        std::lock_guard<std::mutex> lk(poolMtx);
        stopping = true;
    }
    workCv.notify_all();
    for (std::thread &t : threads)
        t.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    unsigned slot;
    {
        std::lock_guard<std::mutex> lk(poolMtx);
        slot = nextWorker;
        nextWorker = (nextWorker + 1) % threadCount();
        ++queued;
        ++unfinished;
    }
    {
        std::lock_guard<std::mutex> lk(workers[slot]->mtx);
        workers[slot]->tasks.push_back(std::move(task));
    }
    workCv.notify_one();
}

bool
ThreadPool::grabTask(unsigned self, std::function<void()> &out)
{
    const unsigned n = threadCount();
    for (unsigned i = 0; i < n; ++i) {
        Worker &w = *workers[(self + i) % n];
        {
            std::lock_guard<std::mutex> lk(w.mtx);
            if (w.tasks.empty())
                continue;
            if (i == 0) {
                out = std::move(w.tasks.back());
                w.tasks.pop_back();
            } else {
                out = std::move(w.tasks.front());
                w.tasks.pop_front();
            }
        }
        std::lock_guard<std::mutex> lk(poolMtx);
        --queued;
        return true;
    }
    return false;
}

void
ThreadPool::workerLoop(unsigned self)
{
    for (;;) {
        std::function<void()> task;
        if (!grabTask(self, task)) {
            std::unique_lock<std::mutex> lk(poolMtx);
            workCv.wait(lk, [this] { return stopping || queued > 0; });
            if (stopping && queued == 0)
                return;
            continue;
        }
        std::exception_ptr err;
        try {
            task();
        } catch (...) {
            err = std::current_exception();
        }
        std::lock_guard<std::mutex> lk(poolMtx);
        if (err && !firstError)
            firstError = err;
        if (--unfinished == 0)
            idleCv.notify_all();
    }
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lk(poolMtx);
    idleCv.wait(lk, [this] { return unfinished == 0; });
    if (firstError) {
        std::exception_ptr err = std::exchange(firstError, nullptr);
        lk.unlock();
        std::rethrow_exception(err);
    }
}

} // namespace elfsim
