#include "cache/prefetch.hh"

namespace elfsim {

StridePrefetcher::StridePrefetcher(const StridePrefetcherParams &params,
                                   Cache &target)
    : params(params), target(target), table(params.tableEntries),
      statsGroup(target.name() + ".stride_pf"),
      issuedCount(statsGroup.addCounter("issued", "prefetches issued")),
      trainCount(statsGroup.addCounter("trained", "training accesses"))
{
}

void
StridePrefetcher::train(Addr pc, Addr addr, Cycle now)
{
    ++trainCount;
    Entry &e = table[(pc / instBytes) % table.size()];
    if (e.tag != pc) {
        e = Entry{};
        e.tag = pc;
        e.lastAddr = addr;
        return;
    }

    const std::int64_t stride =
        static_cast<std::int64_t>(addr) -
        static_cast<std::int64_t>(e.lastAddr);
    if (stride != 0 && stride == e.stride) {
        if (e.conf < params.confThreshold)
            ++e.conf;
    } else {
        e.stride = stride;
        e.conf = 0;
    }
    e.lastAddr = addr;

    if (e.conf >= params.confThreshold && e.stride != 0) {
        for (unsigned d = 0; d < params.degree; ++d) {
            const std::int64_t lead =
                e.stride * static_cast<std::int64_t>(
                               params.distance + d);
            const Addr target_addr =
                static_cast<Addr>(static_cast<std::int64_t>(addr) + lead);
            target.prefetch(target_addr, now);
            ++issuedCount;
        }
    }
}

void
StridePrefetcher::reset()
{
    for (Entry &e : table)
        e = Entry{};
}

void
StridePrefetcher::saveState(Serializer &s) const
{
    s.u64(table.size());
    for (const Entry &e : table) {
        s.u64(e.tag);
        s.u64(e.lastAddr);
        s.u64(std::uint64_t(e.stride));
        s.u32(e.conf);
    }
    s.u64(issuedCount.raw());
    s.u64(trainCount.raw());
}

void
StridePrefetcher::loadState(Deserializer &d)
{
    if (d.u64() != table.size())
        throw ParseError("stride_pf: geometry mismatch");
    for (Entry &e : table) {
        e.tag = d.u64();
        e.lastAddr = d.u64();
        e.stride = std::int64_t(d.u64());
        e.conf = d.u32();
    }
    issuedCount.reset();
    issuedCount += d.u64();
    trainCount.reset();
    trainCount += d.u64();
}

} // namespace elfsim
