/**
 * @file
 * Figure 8 equivalent: L-ELF and U-ELF IPC relative to DCF, with the
 * average number of instructions fetched per coupled period.
 */

#include "bench_util.hh"

using namespace elfsim;

int
main(int argc, char **argv)
{
    const bench::Options opt = bench::parseOptions(argc, argv);
    bench::banner(
        "Figure 8 — L-ELF and U-ELF IPC relative to DCF "
        "(+ avg coupled insts per period)",
        "U-ELF speculates further in coupled mode than L-ELF; more "
        "coupled instructions = more hidden restart latency");

    std::printf("%-18s %8s | %8s %8s | %8s %8s | %6s\n", "workload",
                "DCF IPC", "L-ELF", "cpl/per", "U-ELF", "cpl/per",
                "U div");

    for (const std::string &name : elfRelevantWorkloads()) {
        const WorkloadSpec *w = findWorkload(name);
        Program p = buildWorkload(*w);
        const RunResult dcf =
            runVariant(p, FrontendVariant::Dcf, opt.runOptions());
        const RunResult l =
            runVariant(p, FrontendVariant::LElf, opt.runOptions());
        const RunResult u =
            runVariant(p, FrontendVariant::UElf, opt.runOptions());
        std::printf("%-18s %8.3f | %8.3f %8.1f | %8.3f %8.1f | %6llu\n",
                    name.c_str(), dcf.ipc, l.ipc / dcf.ipc,
                    l.avgCoupledInsts, u.ipc / dcf.ipc,
                    u.avgCoupledInsts,
                    (unsigned long long)u.divergenceFlushes);
        std::fflush(stdout);
    }
    std::printf("\npaper shape: up to +3.6%% (L) / +5.2%% (U) on "
                "high-MPKI workloads; U-ELF fetches more per period "
                "than L-ELF.\n");
    return 0;
}
