#include "sim/config.hh"

#include <iomanip>

#include "common/hash.hh"

namespace elfsim {

SimConfig
makeConfig(FrontendVariant variant)
{
    SimConfig cfg;
    cfg.variant = variant;
    return cfg;
}

void
printConfig(std::ostream &os, const SimConfig &cfg)
{
    auto row = [&](const char *k, const std::string &v) {
        os << "  " << std::left << std::setw(26) << k << v << "\n";
    };
    auto kb = [](double bytes) {
        return std::to_string(bytes / 1024.0).substr(0, 5) + "KB";
    };

    os << "Pipeline configuration (" << variantName(cfg.variant)
       << ")\n";
    row("Front-end", std::string(variantName(cfg.variant)));
    row("BTB L0",
        std::to_string(cfg.btb.l0.entries) + "-entry fully-assoc, " +
            std::to_string(cfg.btb.l0.latency) + " cycle");
    row("BTB L1",
        std::to_string(cfg.btb.l1.entries) + "-entry " +
            std::to_string(cfg.btb.l1.assoc) + "-way, " +
            std::to_string(cfg.btb.l1.latency) + " cycle");
    row("BTB L2",
        std::to_string(cfg.btb.l2.entries) + "-entry " +
            std::to_string(cfg.btb.l2.assoc) + "-way, " +
            std::to_string(cfg.btb.l2.latency) + " cycle");
    row("BTB entry",
        std::to_string(btbMaxInsts) + " insts, up to " +
            std::to_string(btbMaxBranches) + " taken branches");

    {
        Tage t(cfg.preds.tage);
        Ittage it(cfg.preds.ittage);
        row("Cond. pred", std::to_string(cfg.preds.tage.numTables) +
                              "-table TAGE, " + kb(t.storageBytes()));
        row("Ind. pred",
            "64-entry L0 BTC + " +
                std::to_string(cfg.preds.ittage.numTables) +
                "-table ITTAGE, " + kb(it.storageBytes()));
    }
    row("RAS", std::to_string(cfg.preds.rasEntries) + " entries");
    row("FAQ", std::to_string(cfg.faqEntries) + "-entry FIFO");
    row("BP1 to FE", std::to_string(cfg.bp1ToFe) + " cycles");
    row("Fetch width", std::to_string(cfg.fetch.width) + " insts");
    row("Issue width",
        std::to_string(cfg.backend.issueWidth) + " insts");
    row("Commit width",
        std::to_string(cfg.backend.commitWidth) + " insts");
    row("ROB/IQ/LSQ",
        std::to_string(cfg.backend.robEntries) + "/" +
            std::to_string(cfg.backend.iqEntries) + "/" +
            std::to_string(cfg.backend.lsqEntries));
    row("L0I", kb(cfg.mem.l0i.sizeBytes) + " " +
                   std::to_string(cfg.mem.l0i.assoc) + "-way, " +
                   std::to_string(cfg.mem.l0i.hitLatency) +
                   "c, 2-way intlv");
    row("L1I", kb(cfg.mem.l1i.sizeBytes) + " " +
                   std::to_string(cfg.mem.l1i.assoc) + "-way, " +
                   std::to_string(cfg.mem.l1i.hitLatency) + "c");
    row("L1D", kb(cfg.mem.l1d.sizeBytes) + " " +
                   std::to_string(cfg.mem.l1d.assoc) + "-way, " +
                   std::to_string(cfg.mem.l1d.hitLatency) + "c");
    row("L2", kb(cfg.mem.l2.sizeBytes) + " unified, " +
                  std::to_string(cfg.mem.l2.hitLatency) + "c");
    row("L3", kb(cfg.mem.l3.sizeBytes) + " unified, " +
                  std::to_string(cfg.mem.l3.hitLatency) + "c");
    row("Memory", std::to_string(cfg.mem.memLatency) + " cycles");

    if (isElf(cfg.variant)) {
        CoupledPredictors cp(cfg.coupledPreds);
        row("Coupled bimodal",
            std::to_string(cfg.coupledPreds.bimodal.entries) +
                " x 3-bit");
        row("Coupled BTC",
            std::to_string(cfg.coupledPreds.btc.entries) + " entries");
        row("Coupled RAS",
            std::to_string(cfg.coupledPreds.rasEntries) + " entries");
        row("Divergence vectors",
            std::to_string(cfg.divergence.vecEntries) +
                " x 2-bit x 2 + " +
                std::to_string(cfg.divergence.targetEntries) +
                "-entry target queues x 2");
        row("ELF total storage", kb(cp.storageBytes()));
    }
}

std::uint64_t
configFingerprint(const SimConfig &cfg)
{
    Fnv1a h;
    // The version string means a semantic change to any parameter's
    // interpretation can invalidate old fingerprints deliberately.
    h.str("elfsim-config-fp-v1");

    h.u64(std::uint64_t(cfg.variant));
    h.u64(cfg.fetch.width).u64(cfg.fetch.fetchToDecode);
    h.u64(cfg.bp1ToFe)
        .u64(cfg.faqEntries)
        .u64(cfg.checkpointEntries)
        .u64(cfg.fetchBufferEntries)
        .u64(cfg.maxInstPrefetch);

    const auto cache = [&h](const CacheParams &c) {
        h.u64(c.sizeBytes)
            .u64(c.assoc)
            .u64(c.lineBytes)
            .u64(c.hitLatency)
            .u64(c.interleaves);
    };
    cache(cfg.mem.l0i);
    cache(cfg.mem.l1i);
    cache(cfg.mem.l1d);
    cache(cfg.mem.l2);
    cache(cfg.mem.l3);
    h.u64(cfg.mem.memLatency).u64(cfg.mem.dataPrefetch ? 1 : 0);
    h.u64(cfg.mem.stridePf.tableEntries)
        .u64(cfg.mem.stridePf.degree)
        .u64(cfg.mem.stridePf.distance)
        .u64(cfg.mem.stridePf.confThreshold);

    const TageParams &t = cfg.preds.tage;
    h.u64(t.numTables)
        .u64(t.baseEntriesLog2)
        .u64(t.tableEntriesLog2)
        .u64(t.tagBits)
        .u64(t.ctrBits)
        .u64(t.minHist)
        .u64(t.maxHist)
        .u64(t.uResetPeriod)
        .u64(t.allocSeed);
    const IttageParams &it = cfg.preds.ittage;
    h.u64(it.numTables)
        .u64(it.tableEntriesLog2)
        .u64(it.baseEntriesLog2)
        .u64(it.tagBits)
        .u64(it.minHist)
        .u64(it.maxHist)
        .u64(it.uResetPeriod)
        .u64(it.allocSeed);
    h.u64(cfg.preds.l0Indirect.entries)
        .u64(cfg.preds.l0Indirect.tagBits)
        .u64(cfg.preds.rasEntries);

    const auto btbLevel = [&h](const BtbLevelParams &l) {
        h.u64(l.entries).u64(l.assoc).u64(l.latency);
    };
    btbLevel(cfg.btb.l0);
    btbLevel(cfg.btb.l1);
    btbLevel(cfg.btb.l2);

    const BackendParams &b = cfg.backend;
    h.u64(b.robEntries)
        .u64(b.iqEntries)
        .u64(b.lsqEntries)
        .u64(b.dispatchWidth)
        .u64(b.issueWidth)
        .u64(b.commitWidth)
        .u64(b.numAlu)
        .u64(b.numMulDiv)
        .u64(b.numLdSt)
        .u64(b.numSimd)
        .u64(b.numStData)
        .u64(b.decodeToDispatch)
        .u64(b.issueToExec)
        .u64(b.mulLatency)
        .u64(b.divLatency)
        .u64(b.fpLatency);

    h.u64(cfg.divergence.vecEntries).u64(cfg.divergence.targetEntries);

    const CoupledPredictorParams &cp = cfg.coupledPreds;
    h.u64(cp.bimodal.entries)
        .u64(cp.bimodal.counterBits)
        .u64(cp.btc.entries)
        .u64(cp.btc.tagBits)
        .u64(cp.rasEntries)
        .u64(std::uint64_t(cp.condKind))
        .u64(cp.gshare.entries)
        .u64(cp.gshare.counterBits)
        .u64(cp.gshare.historyBits);

    h.u64(std::uint64_t(cfg.payloadPolicy))
        .u64(cfg.condElfRequireSaturation ? 1 : 0)
        .u64(cfg.rngSeed)
        .u64(cfg.decodeBtbFill ? 1 : 0);
    return h.value();
}

} // namespace elfsim
