/**
 * @file
 * Server capacity study — the paper's motivating scenario: a
 * transaction-server-like workload whose instruction footprint grows
 * beyond the L1I and BTB reach. As it grows, the decoupled fetcher's
 * FAQ-directed prefetch becomes the dominant benefit (the paper's
 * "server 1 improves 40% with DCF"), while BTB misses expose the
 * decode-resteer feedback loop that ELF's coupled mode shortens.
 *
 * The (footprint × variant) grid is a SweepSpec
 * (bench_specs.hh::serverCapacitySpec); the common bench options
 * apply (--jobs N, --json PATH, --csv PATH, --spec, --dump-spec,
 * --quick, --help).
 *
 *   $ ./server_capacity [--jobs N] [--json results.json]
 *
 * With `--hammer N` the binary doubles as the sweep-service load
 * generator: it starts an in-process elfsimd (service/daemon.hh),
 * fires the same spec from N concurrent HTTP clients — plus one
 * client that disconnects right after submitting — and verifies
 * every complete response is byte-identical to an in-process
 * SweepRunner run of the spec, the daemon keeps serving after the
 * disconnect, and /stats shows cross-request trace-cache sharing.
 *
 *   $ ./server_capacity --quick --hammer 4
 */

#include <atomic>
#include <cstdio>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "bench_specs.hh"
#include "bench_util.hh"
#include "service/daemon.hh"
#include "service/http.hh"

using namespace elfsim;

namespace {

/**
 * The load-generator mode (see file comment). Returns the process
 * exit status: 0 when every client saw byte-identical results and
 * the daemon stayed healthy.
 */
int
hammerDaemon(const SweepSpec &spec, unsigned clients,
             const bench::Options &opt)
{
    // Reference bytes: the same spec through an in-process runner.
    // Results are thread-count-independent, so this matches what the
    // daemon's (differently sized) pool produces.
    const ExpandedSweep ex = expandSweep(spec);
    SweepRunner runner(bench::specJobs(opt, spec));
    bench::armRunner(runner, spec);
    const std::vector<RunResult> res = runner.run(ex.jobs);
    std::ostringstream want;
    writeResultsJson(want, res);
    const std::string expected = want.str();

    std::ostringstream sj;
    writeSweepSpec(sj, spec);
    const std::string body = sj.str();

    service::ServiceConfig cfg;
    cfg.jobs = opt.jobs;
    service::SweepService svc(cfg);
    svc.start();
    std::printf("hammer: in-process elfsimd on 127.0.0.1:%u, "
                "%u clients + 1 disconnector\n",
                unsigned(svc.port()), clients);

    std::atomic<unsigned> bad{0};
    std::vector<std::thread> posters;
    for (unsigned c = 0; c < clients; ++c) {
        posters.emplace_back([&, c] {
            try {
                const service::HttpResponse r = service::httpFetch(
                    "127.0.0.1", svc.port(), "POST", "/sweep", body);
                if (r.status != 200) {
                    std::fprintf(stderr,
                                 "hammer: client %u got status %d\n",
                                 c, r.status);
                    ++bad;
                } else if (r.body != expected) {
                    std::fprintf(
                        stderr,
                        "hammer: client %u response differs from the "
                        "in-process run (%zu vs %zu bytes)\n",
                        c, r.body.size(), expected.size());
                    ++bad;
                }
            } catch (const SimError &e) {
                std::fprintf(stderr, "hammer: client %u: %s\n", c,
                             e.what());
                ++bad;
            }
        });
    }

    // The injected fault: submit a sweep, then hang up without
    // reading the response. The daemon must skip or cancel that
    // sweep's cells and keep serving everyone else.
    {
        const int fd = service::connectTcp("127.0.0.1", svc.port());
        std::ostringstream req;
        req << "POST /sweep HTTP/1.1\r\ncontent-length: "
            << body.size() << "\r\n\r\n"
            << body;
        service::writeAll(fd, req.str());
        ::close(fd);
    }

    for (std::thread &t : posters)
        t.join();

    bool healthy = false, sharedCache = false;
    try {
        const service::HttpResponse hz = service::httpFetch(
            "127.0.0.1", svc.port(), "GET", "/healthz", {});
        healthy = hz.status == 200;
        const service::HttpResponse st = service::httpFetch(
            "127.0.0.1", svc.port(), "GET", "/stats", {});
        const json::Value doc = json::parse(st.body);
        const std::uint64_t hits =
            doc.at("trace").at("trace.cache_hits").asU64();
        const std::uint64_t sweeps =
            doc.at("service").at("service.sweeps").asU64();
        sharedCache = hits > 0;
        std::printf("hammer: daemon alive after disconnect; %llu "
                    "sweeps served, %llu trace-cache hits\n",
                    (unsigned long long)sweeps,
                    (unsigned long long)hits);
    } catch (const SimError &e) {
        std::fprintf(stderr, "hammer: daemon unreachable: %s\n",
                     e.what());
    }
    svc.stop();

    if (bad || !healthy || !sharedCache) {
        std::fprintf(stderr,
                     "hammer FAILED: %u bad clients, healthy=%d, "
                     "cross-request cache sharing=%d\n",
                     bad.load(), healthy, sharedCache);
        return 1;
    }
    std::printf("hammer OK: %u clients byte-identical to the "
                "in-process run, daemon survived the disconnect\n",
                clients);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Options defaults;
    defaults.warmupInsts = 150000;
    defaults.measureInsts = 150000;
    unsigned hammer = 0;
    const std::vector<bench::LocalFlag> locals = {
        {"--hammer", true,
         "  --hammer N      start an in-process elfsimd and verify N "
         "concurrent\n"
         "                  clients (plus one injected disconnect) "
         "stream results\n"
         "                  byte-identical to an in-process run\n",
         [&](const char *v) {
             hammer = unsigned(bench::parseCount(
                 argv[0], "--hammer", v, UINT_MAX));
         }},
    };
    const bench::Options opt =
        bench::parseOptions(argc, argv, defaults, locals);

    const SweepSpec spec = bench::finalizeSpec(
        bench::serverCapacitySpec(opt.runOptions()), opt, argv[0]);

    if (hammer > 0)
        return hammerDaemon(spec, hammer, opt);

    std::printf("Instruction-footprint sweep (server-1 shape)\n");

    const ExpandedSweep ex = expandSweep(spec);
    SweepRunner runner(bench::specJobs(opt, spec));
    bench::armRunner(runner, spec);
    const std::vector<RunResult> res = runner.run(ex.jobs);

    if (!opt.specPath.empty()) {
        bench::printResultsTable(res, ex.labels);
        bench::exportResults(opt, runner);
        return bench::exitCode(runner);
    }

    std::printf("%-10s %9s | %7s %7s %7s | %8s %8s\n", "code KB",
                "DCF IPC", "NoDCF", "L-ELF", "U-ELF", "BTB L0",
                "dec.rst");
    for (std::size_t i = 0; i < ex.programs.size(); ++i) {
        const RunResult &dcf = res[4 * i + 0];
        const RunResult &nod = res[4 * i + 1];
        const RunResult &l = res[4 * i + 2];
        const RunResult &u = res[4 * i + 3];
        std::printf("%-10llu %9.3f | %7.3f %7.3f %7.3f | %7.0f%% "
                    "%8llu\n",
                    (unsigned long long)(ex.programs[i]
                                             .footprintBytes() /
                                         1024),
                    dcf.ipc, nod.ipc / dcf.ipc, l.ipc / dcf.ipc,
                    u.ipc / dcf.ipc, 100 * dcf.btbHitL0,
                    (unsigned long long)dcf.decodeResteers);
        std::fflush(stdout);
    }

    std::printf("\nAs the footprint grows: the BTB L0 hit rate falls, "
                "decode resteers (the BTB-miss\nfeedback loop) rise, "
                "and NoDCF collapses because it has no FAQ-directed "
                "prefetch.\n");
    bench::exportResults(opt, runner);
    return bench::exitCode(runner);
}
