#include "sim/runner.hh"

#include <cmath>

#include "common/logging.hh"

namespace elfsim {

StatSnapshot
StatSnapshot::capture(const Core &core)
{
    StatSnapshot s;
    s.cycles = core.cycles();
    s.insts = core.committed();
    s.condMispredicts = core.backend().stats().condMispredicts;
    s.targetMispredicts = core.backend().stats().targetMispredicts;
    s.execFlushes = core.stats().execFlushes;
    s.memOrderFlushes = core.stats().memOrderFlushes;
    s.decodeResteers = core.stats().decodeResteers;
    s.divergenceFlushes = core.stats().divergenceFlushes;
    s.coupledCommitted = core.backend().stats().coupledCommitted;
    s.l1dMisses = core.memory().l1d().misses();
    return s;
}

StatSnapshot
StatSnapshot::delta(const StatSnapshot &since) const
{
    StatSnapshot d;
    d.cycles = cycles - since.cycles;
    d.insts = insts - since.insts;
    d.condMispredicts = condMispredicts - since.condMispredicts;
    d.targetMispredicts = targetMispredicts - since.targetMispredicts;
    d.execFlushes = execFlushes - since.execFlushes;
    d.memOrderFlushes = memOrderFlushes - since.memOrderFlushes;
    d.decodeResteers = decodeResteers - since.decodeResteers;
    d.divergenceFlushes = divergenceFlushes - since.divergenceFlushes;
    d.coupledCommitted = coupledCommitted - since.coupledCommitted;
    d.l1dMisses = l1dMisses - since.l1dMisses;
    return d;
}

RunResult
runSimulation(const Program &prog, const SimConfig &cfg,
              const RunOptions &opts)
{
    Core core(cfg, prog);

    // Warmup: predictors, BTB, and caches train; stats that matter
    // are measured as deltas across the measurement window.
    core.run(opts.warmupInsts);
    const StatSnapshot warm = StatSnapshot::capture(core);

    core.run(opts.measureInsts);
    const StatSnapshot d = StatSnapshot::capture(core).delta(warm);

    RunResult r;
    r.workload = prog.name();
    r.variant = variantName(cfg.variant);
    r.cycles = d.cycles;
    r.insts = d.insts;
    r.ipc = r.cycles ? double(r.insts) / double(r.cycles) : 0.0;

    const double kilo = double(r.insts) / 1000.0;
    r.condMpki = kilo > 0 ? double(d.condMispredicts) / kilo : 0;
    r.branchMpki =
        kilo > 0
            ? double(d.condMispredicts + d.targetMispredicts) / kilo
            : 0;

    r.execFlushes = d.execFlushes;
    r.memOrderFlushes = d.memOrderFlushes;
    r.decodeResteers = d.decodeResteers;
    r.divergenceFlushes = d.divergenceFlushes;
    r.pendingFlushWaits = core.stats().pendingFlushWaits;

    r.btbHitL0 = core.btb().cumulativeHitRate(0);
    r.btbHitL1 = core.btb().cumulativeHitRate(1);
    r.btbHitL2 = core.btb().cumulativeHitRate(2);

    const auto &l0i = core.memory().l0i();
    r.l0iMissRate = l0i.accesses()
                        ? double(l0i.misses()) / double(l0i.accesses())
                        : 0;
    r.l1dMpki = kilo > 0 ? double(d.l1dMisses) / kilo : 0;

    r.wrongPathInsts = core.supply().wrongPathInsts();
    r.instPrefetches = core.elf().stats().instPrefetches;

    r.avgCoupledInsts = core.elf().stats().avgCoupledInstsPerPeriod();
    r.coupledPeriods = core.elf().stats().coupledPeriods;
    r.coupledCommittedFrac =
        r.insts ? double(d.coupledCommitted) / double(r.insts) : 0;

    return r;
}

RunResult
runVariant(const Program &prog, FrontendVariant variant,
           const RunOptions &opts)
{
    return runSimulation(prog, makeConfig(variant), opts);
}

double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double logSum = 0.0;
    for (double x : xs) {
        ELFSIM_ASSERT(x > 0, "geomean of non-positive value");
        logSum += std::log(x);
    }
    return std::exp(logSum / double(xs.size()));
}

} // namespace elfsim
