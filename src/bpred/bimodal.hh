/**
 * @file
 * Bimodal conditional branch predictor: a PC-indexed table of
 * saturating counters. Used standalone as the COND-ELF coupled
 * predictor (2K entries, 3-bit) and inside TAGE as the base predictor.
 */

#ifndef ELFSIM_BPRED_BIMODAL_HH
#define ELFSIM_BPRED_BIMODAL_HH

#include <vector>

#include "common/error.hh"
#include "common/sat_counter.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace elfsim {

/** Bimodal predictor parameters. */
struct BimodalParams
{
    unsigned entries = 2048;
    unsigned counterBits = 3;
};

/** PC-indexed saturating-counter direction predictor. */
class Bimodal
{
  public:
    explicit Bimodal(const BimodalParams &params = {});

    /** Predicted direction for @a pc. */
    bool predict(Addr pc) const { return entry(pc).isTaken(); }

    /**
     * @return true iff the counter for @a pc is saturated. COND-ELF
     * only speculates past a conditional when its 3-bit counter is
     * saturated (the paper's filtering mechanism).
     */
    bool saturated(Addr pc) const { return entry(pc).isSaturated(); }

    /** Train with the resolved direction. */
    void update(Addr pc, bool taken) { entry(pc).update(taken); }

    /** Reset all counters to weakly not-taken. */
    void reset();

    unsigned numEntries() const { return params.entries; }

    /** Storage cost in bytes (for the Table II report). */
    double
    storageBytes() const
    {
        return params.entries * params.counterBits / 8.0;
    }

    /** Serialize the counter table (warm-state checkpoints). */
    template <class S>
    void
    saveState(S &s) const
    {
        s.u64(table.size());
        for (const SatCounter &c : table)
            s.u16(std::uint16_t(c.raw()));
    }

    template <class D>
    void
    loadState(D &d)
    {
        if (d.u64() != table.size())
            throw ParseError("bimodal: geometry mismatch");
        for (SatCounter &c : table)
            c.set(d.u16());
    }

  private:
    SatCounter &entry(Addr pc) { return table[index(pc)]; }
    const SatCounter &entry(Addr pc) const { return table[index(pc)]; }
    std::size_t
    index(Addr pc) const
    {
        return (pc / instBytes) % params.entries;
    }

    BimodalParams params;
    std::vector<SatCounter> table;
};

} // namespace elfsim

#endif // ELFSIM_BPRED_BIMODAL_HH
