/**
 * @file
 * Wire protocol of the distributed sweep layer (elfsim-shard-v1).
 *
 * A coordinator (dist/coordinator.hh) drives worker processes
 * (`elfsimd --worker`) over the same loopback HTTP/1.1 framing the
 * sweep service already speaks (service/http.hh). Three endpoints:
 *
 *   POST /shard           body = one shard request (below). The
 *                         worker responds 200 with a chunked JSONL
 *                         stream: one elfsim-manifest-v1 line per
 *                         completed cell (global index + jobKey +
 *                         full result), heartbeat event lines while
 *                         cells run, and a terminal "done" event.
 *   POST /artifact/trace  body = a raw elfsim-trace-v2 image
 *                         (CompiledTrace::serialized()); the
 *                         `x-elfsim-key` header carries the expected
 *                         content hash (16 hex digits) and
 *                         `x-elfsim-name` the display name. The
 *                         worker validates magic/key/size/checksum
 *                         and installs the trace into its TraceCache
 *                         memo — this is how each program compiles
 *                         once per fleet instead of once per host.
 *   POST /artifact/ckpt   body = a raw elfsim-ckpt-v1 file; the
 *                         `x-elfsim-name` header carries the target
 *                         file name. The worker drops it into its
 *                         checkpoint directory; the CheckpointStore's
 *                         own load path validates it (any defect
 *                         demotes to fast-forward, never a failure).
 *
 * Shard request document:
 *
 *   {"schema": "elfsim-shard-v1",
 *    "cells": [3, 4, 11],          // global grid indices to run
 *    "spec": { <elfsim-sweepspec-v1> }}
 *
 * Every worker expands the full spec (expansion is deterministic)
 * and runs only its cells with SweepRunner's subset-run path, so
 * global indices — and therefore seeds, jobKeys, and result bytes —
 * are identical to a single-process run of the whole grid.
 *
 * Shard response lines (JSONL; one JSON object per line):
 *
 *   {"manifest":"elfsim-manifest-v1","index":N,"key":"...",
 *    "status":"ok","result":{...}}               completed cell
 *   {"shard":"elfsim-shard-v1","event":"heartbeat"}      liveness
 *   {"shard":"elfsim-shard-v1","event":"done","cells":K} terminal
 *
 * Completed-cell lines reuse the resume-manifest schema verbatim:
 * the RunResult JSON round trip is byte-exact, which is what makes
 * the coordinator's merged output byte-identical to a local run.
 */

#ifndef ELFSIM_DIST_WIRE_HH
#define ELFSIM_DIST_WIRE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/export.hh"
#include "sim/sweep_spec.hh"

namespace elfsim {
namespace dist {

/** One parsed POST /shard request body. */
struct ShardRequest
{
    SweepSpec spec;
    std::vector<std::size_t> cells; ///< global grid indices to run
};

/** Serialize a shard request (the coordinator's send path). */
std::string writeShardRequest(const SweepSpec &spec,
                              const std::vector<std::size_t> &cells);

/** Parse a shard request body; throws ParseError / ConfigError. */
ShardRequest parseShardRequest(std::string_view body);

/** One parsed line of a shard response stream. */
struct ShardLine
{
    enum class Kind
    {
        Result,    ///< a completed cell (entry is valid)
        Heartbeat, ///< liveness tick
        Done,      ///< terminal event (cells = completed count)
    };

    Kind kind = Kind::Heartbeat;
    ManifestEntry entry;      ///< Result only
    std::uint64_t cells = 0;  ///< Done only
};

/** Parse one stream line; throws ParseError on junk. */
ShardLine parseShardLine(const std::string &line);

/** The heartbeat event line (newline-terminated). */
std::string heartbeatLine();

/** The terminal event line (newline-terminated). */
std::string doneLine(std::uint64_t cells);

/**
 * Incremental line reader over a chunked HTTP response body: feeds
 * on the socket as needed, de-chunks, and hands back one JSONL line
 * at a time — the coordinator's receive path, where waiting for the
 * whole body would defeat both streaming merge and lease timeouts.
 *
 * nextLine() returns false at the end of the stream; failed()
 * distinguishes the orderly terminal chunk from a torn connection
 * (worker death) or a receive timeout (lease expiry) — both surface
 * as failed() == true with error() filled.
 */
class ShardStream
{
  public:
    /** Sentinel worker index: no fault-injection hooks. */
    static constexpr std::size_t kNoWorker = std::size_t(-1);

    /** @a fd stays owned by the caller; @a initial holds body bytes
     *  already read past the response head. @a worker identifies the
     *  peer for the deterministic network fault sites (netdrop /
     *  nethb / nettrunc); kNoWorker disables injection. */
    ShardStream(int fd, std::string initial,
                std::size_t worker = kNoWorker)
        : fd(fd), raw(std::move(initial)), worker(worker)
    {
    }

    bool nextLine(std::string &line);

    bool failed() const { return bad; }
    const std::string &error() const { return err; }

  private:
    bool fill();
    bool fail(const char *why);

    int fd;
    std::string raw;          ///< undecoded socket bytes
    std::size_t rawPos = 0;
    std::string out;          ///< de-chunked bytes pending '\n'
    std::size_t chunkLeft = 0;
    unsigned skipCrlf = 0;    ///< chunk-trailer bytes still to skip
    bool final_ = false;      ///< terminal zero-chunk seen
    bool bad = false;
    std::string err;
    std::size_t worker;       ///< peer index for fault injection
    std::uint64_t rawSeen = 0; ///< raw bytes delivered ('nettrunc')
    bool cutPending = false;  ///< injected truncation fired
};

} // namespace dist
} // namespace elfsim

#endif // ELFSIM_DIST_WIRE_HH
