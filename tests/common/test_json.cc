#include <gtest/gtest.h>

#include <string>

#include "common/error.hh"
#include "common/json.hh"

using namespace elfsim;

TEST(Json, ParsesScalars)
{
    EXPECT_TRUE(json::parse("null").isNull());
    EXPECT_TRUE(json::parse("true").asBool());
    EXPECT_FALSE(json::parse("false").asBool());
    EXPECT_EQ(json::parse("42").asU64(), 42u);
    EXPECT_EQ(json::parse("18446744073709551615").asU64(),
              18446744073709551615ull);
    EXPECT_DOUBLE_EQ(json::parse("-1.5e3").asDouble(), -1500.0);
    EXPECT_EQ(json::parse("\"hi\"").asString(), "hi");
}

TEST(Json, NumbersKeepExactText)
{
    // The loader relies on numbers surviving a round trip exactly:
    // the raw token is kept and re-parsed on demand.
    const json::Value v = json::parse("0.1");
    EXPECT_DOUBLE_EQ(v.asDouble(), 0.1);
    EXPECT_THROW(json::parse("0.5").asU64(), ParseError);
    EXPECT_THROW(json::parse("-3").asU64(), ParseError);
}

TEST(Json, ParsesNestedStructures)
{
    const json::Value v = json::parse(
        R"({"a": [1, 2, {"b": "c"}], "d": {"e": false}})");
    EXPECT_EQ(v.at("a").size(), 3u);
    EXPECT_EQ(v.at("a")[0].asU64(), 1u);
    EXPECT_EQ(v.at("a")[2].at("b").asString(), "c");
    EXPECT_FALSE(v.at("d").at("e").asBool());
    EXPECT_EQ(v.find("missing"), nullptr);
    EXPECT_THROW(v.at("missing"), ParseError);
}

TEST(Json, DecodesStringEscapes)
{
    EXPECT_EQ(json::parse(R"("a\"b\\c\nd\te")").asString(),
              "a\"b\\c\nd\te");
    EXPECT_EQ(json::parse(R"("Aé")").asString(),
              "A\xc3\xa9");
}

TEST(Json, RejectsMalformedInput)
{
    EXPECT_THROW(json::parse(""), ParseError);
    EXPECT_THROW(json::parse("{"), ParseError);
    EXPECT_THROW(json::parse("[1,]"), ParseError);
    EXPECT_THROW(json::parse("{\"a\" 1}"), ParseError);
    EXPECT_THROW(json::parse("nul"), ParseError);
    EXPECT_THROW(json::parse("01"), ParseError);
    EXPECT_THROW(json::parse("1 trailing"), ParseError);
    EXPECT_THROW(json::parse("\"unterminated"), ParseError);
}

TEST(Json, RejectsRunawayNesting)
{
    std::string deep;
    for (int i = 0; i < 100; ++i)
        deep += '[';
    EXPECT_THROW(json::parse(deep), ParseError);
}

TEST(Json, TypeMismatchesThrow)
{
    const json::Value v = json::parse("[1]");
    EXPECT_THROW(v.asString(), ParseError);
    EXPECT_THROW(v.asU64(), ParseError);
    EXPECT_THROW(v.at("k"), ParseError);
    EXPECT_NO_THROW(v[0]);
}
