#include "common/fault.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <thread>

#include "common/error.hh"
#include "common/logging.hh"

namespace elfsim {

namespace {

thread_local ExecContext *currentCtx = nullptr;

[[noreturn]] void
throwCancelled(const JobControl &ctl)
{
    switch (ctl.cancelReason()) {
      case CancelReason::Deadline:
        throw TimeoutError("job exceeded its wall-clock deadline");
      case CancelReason::Stalled:
        throw TimeoutError(
            "watchdog: committed-instruction heartbeat stalled");
      case CancelReason::Interrupted:
        throw CancelledError("sweep interrupted");
      case CancelReason::None:
        break;
    }
    throw CancelledError("job cancelled");
}

} // namespace

ExecContext *
currentExecContext()
{
    return currentCtx;
}

ScopedExecContext::ScopedExecContext(ExecContext &ctx) : prev(currentCtx)
{
    currentCtx = &ctx;
}

ScopedExecContext::~ScopedExecContext()
{
    currentCtx = prev;
}

void
ExecContext::poll(std::uint64_t tick, std::uint64_t committed)
{
    if (control) {
        control->heartbeat.store(committed, std::memory_order_relaxed);
        if (control->cancelled())
            throwCancelled(*control);
    }
    FaultInjector &inj = FaultInjector::instance();
    if (inj.armed())
        inj.poll(*this, tick);
}

FaultInjector &
FaultInjector::instance()
{
    static FaultInjector inj;
    static const bool envArmed = [] {
        if (const char *env = std::getenv("ELFSIM_FAULT")) {
            if (*env) {
                try {
                    inj.arm(parse(env));
                } catch (const ConfigError &e) {
                    ELFSIM_FATAL("$ELFSIM_FAULT: %s", e.what());
                }
            }
        }
        return true;
    }();
    (void)envArmed;
    return inj;
}

std::vector<FaultSpec>
FaultInjector::parse(const std::string &spec)
{
    std::vector<FaultSpec> out;
    std::size_t start = 0;
    while (start <= spec.size()) {
        std::size_t end = spec.find(',', start);
        if (end == std::string::npos)
            end = spec.size();
        const std::string item = spec.substr(start, end - start);
        start = end + 1;
        if (item.empty()) {
            if (start > spec.size())
                break;
            throw ConfigError("empty fault entry");
        }

        const std::size_t c1 = item.find(':');
        const std::size_t c2 =
            c1 == std::string::npos ? std::string::npos
                                    : item.find(':', c1 + 1);
        if (c1 == std::string::npos || c2 == std::string::npos)
            throw ConfigError(errorf(
                "bad fault entry '%s' (expected <site>:<job>:<tick>)",
                item.c_str()));

        const std::string site = item.substr(0, c1);
        const std::string job = item.substr(c1 + 1, c2 - c1 - 1);
        const std::string tick = item.substr(c2 + 1);

        FaultSpec s;
        if (site == "throw")
            s.kind = FaultKind::Throw;
        else if (site == "panic")
            s.kind = FaultKind::Panic;
        else if (site == "transient")
            s.kind = FaultKind::Transient;
        else if (site == "hang")
            s.kind = FaultKind::Hang;
        else if (site == "slow")
            s.kind = FaultKind::Slow;
        else if (site == "tracecache")
            s.kind = FaultKind::TraceCache;
        else if (site == "ckptcache")
            s.kind = FaultKind::CkptCache;
        else if (site == "warmtab")
            s.kind = FaultKind::WarmTables;
        else if (site == "netrefuse")
            s.kind = FaultKind::NetRefuse;
        else if (site == "netdrop")
            s.kind = FaultKind::NetDrop;
        else if (site == "nettrunc")
            s.kind = FaultKind::NetTrunc;
        else if (site == "netcorrupt")
            s.kind = FaultKind::NetCorrupt;
        else if (site == "nethb")
            s.kind = FaultKind::NetHeartbeat;
        else if (site == "netslow")
            s.kind = FaultKind::NetSlow;
        else
            throw ConfigError(errorf(
                "unknown fault site '%s' (throw, panic, transient, "
                "hang, slow, tracecache, ckptcache, warmtab, "
                "netrefuse, netdrop, nettrunc, netcorrupt, nethb, "
                "netslow)",
                site.c_str()));

        const auto parseNum = [&](const std::string &v,
                                  const char *what) -> std::uint64_t {
            errno = 0;
            char *numEnd = nullptr;
            const unsigned long long n =
                std::strtoull(v.c_str(), &numEnd, 10);
            if (v.empty() || errno == ERANGE ||
                numEnd != v.c_str() + v.size() || v[0] == '-')
                throw ConfigError(errorf(
                    "bad %s '%s' in fault entry '%s'", what, v.c_str(),
                    item.c_str()));
            return n;
        };

        if (job == "*") {
            s.anyJob = true;
        } else {
            s.job = std::size_t(parseNum(job, "job index"));
        }
        s.tick = parseNum(tick, "tick");
        out.push_back(s);
    }
    return out;
}

bool
isNetFault(FaultKind k)
{
    switch (k) {
      case FaultKind::NetRefuse:
      case FaultKind::NetDrop:
      case FaultKind::NetTrunc:
      case FaultKind::NetCorrupt:
      case FaultKind::NetHeartbeat:
      case FaultKind::NetSlow:
        return true;
      default:
        return false;
    }
}

void
FaultInjector::arm(std::vector<FaultSpec> specs)
{
    std::lock_guard<std::mutex> lk(netMtx);
    armedFaults = std::move(specs);
    netState.assign(armedFaults.size(), NetState{});
}

void
FaultInjector::poll(const ExecContext &ctx, std::uint64_t tick)
{
    // Match under the lock, fire after releasing it: fire() may block
    // for seconds (hang) or throw, and must never hold the mutex the
    // arm()/read hooks on other threads need.
    std::vector<FaultSpec> matched;
    {
        std::lock_guard<std::mutex> lk(netMtx);
        for (const FaultSpec &s : armedFaults) {
            if (s.kind == FaultKind::TraceCache ||
                s.kind == FaultKind::CkptCache ||
                s.kind == FaultKind::WarmTables || isNetFault(s.kind))
                continue; // fires from its own hook, not here
            if (!s.anyJob && s.job != ctx.jobIndex)
                continue;
            if (tick < s.tick)
                continue;
            matched.push_back(s);
        }
    }
    for (const FaultSpec &s : matched)
        fire(s, ctx);
}

void
FaultInjector::fire(const FaultSpec &s, const ExecContext &ctx)
{
    switch (s.kind) {
      case FaultKind::Throw:
        throw InjectedError(errorf(
            "injected throw in job %zu at tick %llu", ctx.jobIndex,
            (unsigned long long)s.tick));
      case FaultKind::Panic:
        ELFSIM_PANIC("injected panic in job %zu at tick %llu",
                     ctx.jobIndex, (unsigned long long)s.tick);
      case FaultKind::Transient:
        if (ctx.attempt == 1)
            throw TransientError(errorf(
                "injected transient failure in job %zu (attempt 1)",
                ctx.jobIndex));
        return;
      case FaultKind::Hang: {
        // Simulated livelock: stop committing and wait for the
        // watchdog to notice the stalled heartbeat. A hard cap keeps
        // a misconfigured run (no watchdog armed) from blocking
        // forever.
        const auto giveUp = std::chrono::steady_clock::now() +
                            std::chrono::seconds(60);
        while (!ctx.control || !ctx.control->cancelled()) {
            if (std::chrono::steady_clock::now() > giveUp)
                throw InternalError(
                    "injected hang expired without cancellation "
                    "(no watchdog armed?)");
            std::this_thread::sleep_for(
                std::chrono::microseconds(200));
        }
        throwCancelled(*ctx.control);
      }
      case FaultKind::Slow:
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        return;
      case FaultKind::TraceCache:
      case FaultKind::CkptCache:
      case FaultKind::WarmTables:
      case FaultKind::NetRefuse:
      case FaultKind::NetDrop:
      case FaultKind::NetTrunc:
      case FaultKind::NetCorrupt:
      case FaultKind::NetHeartbeat:
      case FaultKind::NetSlow:
        return; // handled by the cache/network hooks, never here
    }
}

bool
FaultInjector::shouldCorruptTraceRead() const
{
    std::lock_guard<std::mutex> lk(netMtx);
    for (const FaultSpec &s : armedFaults) {
        if (s.kind != FaultKind::TraceCache)
            continue;
        if (s.anyJob)
            return true;
        const ExecContext *ctx = currentExecContext();
        // Precompilation happens before any job context exists; a
        // job-targeted spec still corrupts those shared loads so the
        // fault cannot be dodged by the precompile pass.
        if (!ctx || ctx->jobIndex == s.job)
            return true;
    }
    return false;
}

bool
FaultInjector::netRefuseConnect(std::size_t worker)
{
    std::lock_guard<std::mutex> lk(netMtx);
    bool refuse = false;
    for (std::size_t i = 0; i < armedFaults.size(); ++i) {
        const FaultSpec &s = armedFaults[i];
        if (s.kind != FaultKind::NetRefuse)
            continue;
        if (!s.anyJob && s.job != worker)
            continue;
        NetState &st = netState[i];
        ++st.count;
        // tick = how many attempts to refuse; 0 = every attempt.
        if (s.tick == 0 || st.count <= s.tick)
            refuse = true;
    }
    return refuse;
}

NetEventFault
FaultInjector::netEventFault(std::size_t worker)
{
    std::lock_guard<std::mutex> lk(netMtx);
    NetEventFault fault = NetEventFault::None;
    for (std::size_t i = 0; i < armedFaults.size(); ++i) {
        const FaultSpec &s = armedFaults[i];
        if (s.kind != FaultKind::NetDrop &&
            s.kind != FaultKind::NetHeartbeat)
            continue;
        if (!s.anyJob && s.job != worker)
            continue;
        NetState &st = netState[i];
        if (st.spent)
            continue;
        ++st.count;
        // tick = 1-based event ordinal (0 behaves as 1); one-shot.
        if (st.count < std::max<std::uint64_t>(s.tick, 1))
            continue;
        st.spent = true;
        // A drop outranks a timeout when both fire on one event: the
        // harsher signal exercises the stricter recovery path.
        if (s.kind == FaultKind::NetDrop)
            fault = NetEventFault::Drop;
        else if (fault == NetEventFault::None)
            fault = NetEventFault::Timeout;
    }
    return fault;
}

std::size_t
FaultInjector::netTruncAllow(std::size_t worker, std::uint64_t soFar,
                             std::size_t incoming)
{
    std::lock_guard<std::mutex> lk(netMtx);
    std::size_t allow = incoming;
    for (std::size_t i = 0; i < armedFaults.size(); ++i) {
        const FaultSpec &s = armedFaults[i];
        if (s.kind != FaultKind::NetTrunc)
            continue;
        if (!s.anyJob && s.job != worker)
            continue;
        NetState &st = netState[i];
        if (st.spent)
            continue;
        if (soFar + incoming <= s.tick)
            continue; // the cut point is still ahead
        st.spent = true;
        const std::size_t keep =
            s.tick > soFar ? std::size_t(s.tick - soFar) : 0;
        allow = std::min(allow, keep);
    }
    return allow;
}

bool
FaultInjector::netCorruptArtifact(std::size_t worker)
{
    std::lock_guard<std::mutex> lk(netMtx);
    bool corrupt = false;
    for (std::size_t i = 0; i < armedFaults.size(); ++i) {
        const FaultSpec &s = armedFaults[i];
        if (s.kind != FaultKind::NetCorrupt)
            continue;
        if (!s.anyJob && s.job != worker)
            continue;
        NetState &st = netState[i];
        if (st.spent)
            continue;
        ++st.count;
        if (st.count < std::max<std::uint64_t>(s.tick, 1))
            continue;
        st.spent = true;
        corrupt = true;
    }
    return corrupt;
}

unsigned
FaultInjector::netSendDelayMs(std::size_t worker)
{
    std::lock_guard<std::mutex> lk(netMtx);
    unsigned delay = 0;
    for (std::size_t i = 0; i < armedFaults.size(); ++i) {
        const FaultSpec &s = armedFaults[i];
        if (s.kind != FaultKind::NetSlow)
            continue;
        if (!s.anyJob && s.job != worker)
            continue;
        NetState &st = netState[i];
        ++st.count;
        // tick = how many sends to slow; 0 = every send.
        if (s.tick == 0 || st.count <= s.tick)
            delay = 20;
    }
    return delay;
}

bool
FaultInjector::shouldCorruptCkptRead() const
{
    std::lock_guard<std::mutex> lk(netMtx);
    for (const FaultSpec &s : armedFaults) {
        if (s.kind != FaultKind::CkptCache)
            continue;
        if (s.anyJob)
            return true;
        const ExecContext *ctx = currentExecContext();
        if (!ctx || ctx->jobIndex == s.job)
            return true;
    }
    return false;
}

bool
FaultInjector::shouldPoisonWarmTables() const
{
    std::lock_guard<std::mutex> lk(netMtx);
    for (const FaultSpec &s : armedFaults) {
        if (s.kind != FaultKind::WarmTables)
            continue;
        if (s.anyJob)
            return true;
        const ExecContext *ctx = currentExecContext();
        if (!ctx || ctx->jobIndex == s.job)
            return true;
    }
    return false;
}

} // namespace elfsim
