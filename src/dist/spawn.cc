#include "dist/spawn.hh"

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/error.hh"

namespace elfsim {
namespace dist {

namespace {

/** Read the worker's stdout line by line until the startup banner
 *  ("elfsimd listening on host:port") appears; return the port. */
std::uint16_t
awaitBanner(int fd, pid_t pid)
{
    std::string buf;
    char tmp[256];
    for (;;) {
        const std::size_t nl = buf.find('\n');
        if (nl != std::string::npos) {
            const std::string line = buf.substr(0, nl);
            buf.erase(0, nl + 1);
            if (line.find("listening on") != std::string::npos) {
                const std::size_t colon = line.rfind(':');
                if (colon == std::string::npos)
                    throw IoError(errorf(
                        "worker banner has no port: '%s'",
                        line.c_str()));
                const unsigned long port =
                    std::strtoul(line.c_str() + colon + 1, nullptr, 10);
                if (port == 0 || port > 65535)
                    throw IoError(errorf(
                        "worker banner has bad port: '%s'",
                        line.c_str()));
                return std::uint16_t(port);
            }
            continue;
        }
        const ssize_t r = ::read(fd, tmp, sizeof tmp);
        if (r < 0 && errno == EINTR)
            continue;
        if (r <= 0) {
            int status = 0;
            ::waitpid(pid, &status, WNOHANG);
            throw IoError(
                "worker exited before printing its listen banner");
        }
        buf.append(tmp, std::size_t(r));
    }
}

LocalWorker
spawnOne(const std::string &bin, unsigned jobs,
         const std::vector<std::string> &extra_args)
{
    int fds[2];
    if (::pipe(fds) != 0)
        throw IoError(errorf("pipe: %s", std::strerror(errno)));

    std::vector<std::string> args = {bin, "--worker", "--port", "0",
                                     "--jobs", std::to_string(jobs)};
    args.insert(args.end(), extra_args.begin(), extra_args.end());

    const pid_t pid = ::fork();
    if (pid < 0) {
        ::close(fds[0]);
        ::close(fds[1]);
        throw IoError(errorf("fork: %s", std::strerror(errno)));
    }
    if (pid == 0) {
        ::close(fds[0]);
        ::dup2(fds[1], STDOUT_FILENO);
        ::close(fds[1]);
        std::vector<char *> argv;
        argv.reserve(args.size() + 1);
        for (std::string &a : args)
            argv.push_back(a.data());
        argv.push_back(nullptr);
        ::execv(bin.c_str(), argv.data());
        ::_exit(127);
    }
    ::close(fds[1]);

    LocalWorker w;
    w.pid = pid;
    w.outFd = fds[0];
    try {
        w.port = awaitBanner(fds[0], pid);
    } catch (...) {
        ::close(fds[0]);
        ::kill(pid, SIGKILL);
        ::waitpid(pid, nullptr, 0);
        throw;
    }
    return w;
}

} // namespace

std::vector<LocalWorker>
spawnLocalWorkers(const std::string &bin, std::size_t count,
                  unsigned jobs,
                  const std::vector<std::string> &extra_args)
{
    std::vector<LocalWorker> fleet;
    fleet.reserve(count);
    try {
        for (std::size_t i = 0; i < count; ++i)
            fleet.push_back(spawnOne(bin, jobs, extra_args));
    } catch (...) {
        stopLocalWorkers(fleet);
        throw;
    }
    return fleet;
}

void
stopLocalWorkers(std::vector<LocalWorker> &workers)
{
    for (LocalWorker &w : workers)
        if (w.pid > 0)
            ::kill(w.pid, SIGTERM);

    for (LocalWorker &w : workers) {
        if (w.pid <= 0)
            continue;
        // Grace period, then escalate. The poll loop keeps this file
        // free of signalfd/timer plumbing; worker shutdown is fast.
        bool gone = false;
        for (int i = 0; i < 200; ++i) {
            const pid_t r = ::waitpid(w.pid, nullptr, WNOHANG);
            if (r == w.pid || (r < 0 && errno == ECHILD)) {
                gone = true;
                break;
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
        }
        if (!gone) {
            ::kill(w.pid, SIGKILL);
            ::waitpid(w.pid, nullptr, 0);
        }
        w.pid = -1;
        if (w.outFd >= 0) {
            ::close(w.outFd);
            w.outFd = -1;
        }
    }
}

} // namespace dist
} // namespace elfsim
