/**
 * @file
 * Ablation study of the decoupled fetcher itself — quantifying the
 * trade-offs the paper's introduction describes:
 *
 *  1. Decoupling depth (BP1->FE): deeper pipelines expose more flush
 *     latency (the cost ELF exists to hide).
 *  2. The L0 BTB: without it every taken branch pays the BP2 resteer
 *     bubble even in steady state.
 *  3. FAQ-directed instruction prefetch: the mechanism behind the
 *     paper's "server 1 improves 40% with DCF".
 *  4. FAQ depth: how much run-ahead the prefetcher and bubble-hiding
 *     can exploit.
 *
 * Run on the high-MPKI MCTS proxy (flush-sensitive) and the server-1
 * proxy (footprint-sensitive).
 */

#include "bench_util.hh"

using namespace elfsim;

namespace {

double
ipc(const Program &p, const SimConfig &cfg, const RunOptions &o)
{
    return runSimulation(p, cfg, o).ipc;
}

void
study(const char *workload, const RunOptions &o)
{
    const WorkloadSpec *w = findWorkload(workload);
    Program p = buildWorkload(*w);
    const SimConfig base = makeConfig(FrontendVariant::Dcf);
    const double baseIpc = ipc(p, base, o);

    std::printf("\n[%s]  baseline DCF IPC %.3f\n", workload, baseIpc);
    std::printf("  %-42s %10s\n", "configuration", "rel. IPC");

    for (Cycle depth : {Cycle(0), Cycle(1), Cycle(5), Cycle(8)}) {
        SimConfig c = base;
        c.bp1ToFe = depth;
        std::printf("  %-42s %10.3f\n",
                    ("BP1->FE depth = " + std::to_string(depth) +
                     " cycles")
                        .c_str(),
                    ipc(p, c, o) / baseIpc);
    }
    {
        SimConfig c = base;
        c.btb.l0.entries = 1; // effectively no L0 BTB
        c.btb.l0.assoc = 0;
        std::printf("  %-42s %10.3f\n",
                    "no L0 BTB (every taken pays BP2 bubble)",
                    ipc(p, c, o) / baseIpc);
    }
    {
        SimConfig c = base;
        c.btb.l0.entries = 96;
        c.btb.l0.assoc = 0;
        std::printf("  %-42s %10.3f\n", "4x L0 BTB (96 entries)",
                    ipc(p, c, o) / baseIpc);
    }
    {
        SimConfig c = base;
        c.maxInstPrefetch = 0; // FAQ-directed prefetch off
        std::printf("  %-42s %10.3f\n", "no FAQ-directed I-prefetch",
                    ipc(p, c, o) / baseIpc);
    }
    {
        SimConfig c = base;
        c.faqEntries = 4;
        std::printf("  %-42s %10.3f\n", "shallow FAQ (4 entries)",
                    ipc(p, c, o) / baseIpc);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::Options opt = bench::parseOptions(argc, argv);
    bench::banner("Ablations — decoupled fetcher design choices",
                  "DCF IPC relative to the Table II baseline");
    study("641.leela", opt.runOptions());
    study("srv1.subtest_1", opt.runOptions());
    std::printf("\nreading guide: the BP1->FE sweep is the cost ELF "
                "hides; the no-prefetch row is\nthe paper's server-1 "
                "'DCF +40%%' mechanism; the no-L0-BTB row is the "
                "steady-state\ntaken-branch bubble the decoupled L0 "
                "BTB removes.\n");
    return 0;
}
