/**
 * @file
 * The native SweepSpec of every experiment harness — one builder per
 * figure/table, each producing exactly the grid the bench used to
 * assemble by hand (same expansion order, so result indices, jobKeys
 * and exported bytes are unchanged).
 *
 * Keeping the grids here, as data, is what makes `--dump-spec` exact:
 * the JSON a bench archives next to its results re-runs the identical
 * grid through any SweepSpec consumer (the bench itself via `--spec`,
 * or the elfsimd daemon).
 */

#ifndef ELFSIM_BENCH_BENCH_SPECS_HH
#define ELFSIM_BENCH_BENCH_SPECS_HH

#include <string>
#include <utility>
#include <vector>

#include "sim/sweep_spec.hh"

namespace elfsim {
namespace bench {

/** One-group spec scaffold shared by every builder. */
inline SweepSpec
oneGroupSpec(std::string name, const RunOptions &run,
             std::vector<WorkloadSelector> workloads,
             std::vector<ConfigSpec> configs)
{
    SweepSpec spec;
    spec.name = std::move(name);
    spec.run = run;
    SweepGroup g;
    g.workloads = std::move(workloads);
    g.configs = std::move(configs);
    spec.groups.push_back(std::move(g));
    return spec;
}

/** Figure 3: always-mispredicting micro-loop x the four frontends. */
inline SweepSpec
fig3Spec(const RunOptions &run)
{
    return oneGroupSpec(
        "fig3_flush_penalty", run,
        {WorkloadSelector::micro("random_branch_loop", {8, 0.5})},
        {ConfigSpec(FrontendVariant::NoDcf),
         ConfigSpec(FrontendVariant::Dcf),
         ConfigSpec(FrontendVariant::LElf),
         ConfigSpec(FrontendVariant::UElf)});
}

/** Figure 6: ELF-relevant workloads x {DCF, NoDCF}. */
inline SweepSpec
fig6Spec(const RunOptions &run)
{
    return oneGroupSpec("fig6_nodcf", run,
                        {WorkloadSelector::set("elf_relevant")},
                        {ConfigSpec(FrontendVariant::Dcf),
                         ConfigSpec(FrontendVariant::NoDcf)});
}

/** Figure 7: ELF-relevant workloads x {DCF, L/RET/IND/COND-ELF}. */
inline SweepSpec
fig7Spec(const RunOptions &run)
{
    return oneGroupSpec("fig7_elf_variants", run,
                        {WorkloadSelector::set("elf_relevant")},
                        {ConfigSpec(FrontendVariant::Dcf),
                         ConfigSpec(FrontendVariant::LElf),
                         ConfigSpec(FrontendVariant::RetElf),
                         ConfigSpec(FrontendVariant::IndElf),
                         ConfigSpec(FrontendVariant::CondElf)});
}

/** Figure 8: ELF-relevant workloads x {DCF, L-ELF, U-ELF}. */
inline SweepSpec
fig8Spec(const RunOptions &run)
{
    return oneGroupSpec("fig8_lelf_uelf", run,
                        {WorkloadSelector::set("elf_relevant")},
                        {ConfigSpec(FrontendVariant::Dcf),
                         ConfigSpec(FrontendVariant::LElf),
                         ConfigSpec(FrontendVariant::UElf)});
}

/** Figure 9: the full catalog x {DCF, NoDCF, L-ELF, U-ELF}. */
inline SweepSpec
fig9Spec(const RunOptions &run)
{
    return oneGroupSpec("fig9_geomean", run,
                        {WorkloadSelector::set("catalog")},
                        {ConfigSpec(FrontendVariant::Dcf),
                         ConfigSpec(FrontendVariant::NoDcf),
                         ConfigSpec(FrontendVariant::LElf),
                         ConfigSpec(FrontendVariant::UElf)});
}

/** DCF ablations: two proxies x the decoupled-fetcher design rows. */
inline SweepSpec
ablationDcfSpec(const RunOptions &run)
{
    std::vector<ConfigSpec> rows;
    rows.push_back(
        ConfigSpec(FrontendVariant::Dcf, "baseline (Table II DCF)"));
    for (unsigned depth : {0u, 1u, 5u, 8u}) {
        ConfigSpec c(FrontendVariant::Dcf,
                     "BP1->FE depth = " + std::to_string(depth) +
                         " cycles");
        c.setU64("bp1_to_fe", depth);
        rows.push_back(std::move(c));
    }
    rows.push_back(
        ConfigSpec(FrontendVariant::Dcf,
                   "no L0 BTB (every taken pays BP2 bubble)")
            .setU64("btb.l0.entries", 1)
            .setU64("btb.l0.assoc", 0));
    rows.push_back(ConfigSpec(FrontendVariant::Dcf,
                              "4x L0 BTB (96 entries)")
                       .setU64("btb.l0.entries", 96)
                       .setU64("btb.l0.assoc", 0));
    rows.push_back(ConfigSpec(FrontendVariant::Dcf,
                              "no FAQ-directed I-prefetch")
                       .setU64("max_inst_prefetch", 0));
    rows.push_back(ConfigSpec(FrontendVariant::Dcf,
                              "shallow FAQ (4 entries)")
                       .setU64("faq_entries", 4));
    return oneGroupSpec("ablation_dcf", run,
                        {WorkloadSelector::byName("641.leela"),
                         WorkloadSelector::byName("srv1.subtest_1")},
                        std::move(rows));
}

/** ELF ablations: the MCTS proxy x the ELF design-choice rows. */
inline SweepSpec
ablationElfSpec(const RunOptions &run)
{
    std::vector<ConfigSpec> rows;
    rows.push_back(ConfigSpec(FrontendVariant::UElf,
                              "U-ELF (default)"));
    rows.push_back(ConfigSpec(FrontendVariant::Dcf, "DCF baseline"));
    rows.push_back(
        ConfigSpec(FrontendVariant::UElf,
                   "payloads wait for ROB head (IV-D1 baseline)")
            .setText("payload_policy", "rob_head"));
    rows.push_back(ConfigSpec(FrontendVariant::UElf,
                              "idealized free checkpoints")
                       .setText("payload_policy", "ideal"));
    rows.push_back(
        ConfigSpec(FrontendVariant::UElf,
                   "no saturation filter (speculate always)")
            .setFlag("cond_elf_require_saturation", false));
    rows.push_back(ConfigSpec(FrontendVariant::UElf,
                              "4x coupled bimodal (8K entries)")
                       .setU64("coupled.bimodal_entries", 8192));
    rows.push_back(ConfigSpec(FrontendVariant::UElf,
                              "1/4 coupled bimodal (512)")
                       .setU64("coupled.bimodal_entries", 512));
    rows.push_back(
        ConfigSpec(FrontendVariant::UElf,
                   "1/4 divergence tracking (16-entry vectors)")
            .setU64("divergence.vec_entries", 16)
            .setU64("divergence.target_entries", 4));
    rows.push_back(ConfigSpec(FrontendVariant::UElf,
                              "shallow FAQ (8 entries)")
                       .setU64("faq_entries", 8));
    rows.push_back(ConfigSpec(FrontendVariant::UElf,
                              "deep FAQ (128 entries)")
                       .setU64("faq_entries", 128));
    rows.push_back(
        ConfigSpec(FrontendVariant::UElf,
                   "extension: gshare coupled predictor")
            .setText("coupled.cond_kind", "gshare"));
    rows.push_back(
        ConfigSpec(FrontendVariant::UElf,
                   "extension: decode-time BTB fill (Boomerang)")
            .setFlag("decode_btb_fill", true));
    return oneGroupSpec("ablation_elf", run,
                        {WorkloadSelector::byName("641.leela")},
                        std::move(rows));
}

/**
 * Simulator throughput: the (optionally strided) catalog across the
 * three distinct hot paths, plus — with @a sampled — a second group
 * running the memory-bound slow movers in sampled mode over a long
 * stream (its own RunOptions, hence its own group).
 */
inline SweepSpec
throughputSpec(const RunOptions &run, unsigned stride, bool sampled,
               bool quick)
{
    SweepSpec spec = oneGroupSpec(
        "throughput", run,
        {WorkloadSelector::set("catalog", stride)},
        {ConfigSpec(FrontendVariant::NoDcf),
         ConfigSpec(FrontendVariant::Dcf),
         ConfigSpec(FrontendVariant::UElf)});
    if (sampled) {
        SweepGroup g;
        g.workloads = {WorkloadSelector::byName("605.mcf"),
                       WorkloadSelector::byName("srv2.subtest_3")};
        g.configs = {ConfigSpec(FrontendVariant::UElf)};
        g.hasRun = true;
        g.run.warmupInsts = 0;
        g.run.measureInsts = quick ? 2500000 : 10000000;
        g.run.samplePeriodInsts = 1000000;
        g.run.sampleLengthInsts = 5000;
        g.run.sampleWarmupInsts = 1000;
        spec.groups.push_back(std::move(g));
    }
    return spec;
}

/** Server capacity study: four growing instruction footprints of the
 *  srv1 recipe x the four frontends. */
inline SweepSpec
serverCapacitySpec(const RunOptions &run)
{
    std::vector<WorkloadSelector> footprints;
    for (unsigned funcs : {64u, 256u, 768u, 1536u}) {
        CfgParams p;
        p.numFuncs = funcs;
        p.blocksPerFunc = 5;   // short handlers
        // Main acts as the dispatcher; nested calls stay rare so the
        // walk keeps returning to main and sweeps the whole image
        // (the srv1 recipe — see the catalog notes).
        p.callBlockProb = 0.08;
        p.indirectCallFrac = 0.15;
        p.callSkew = 0.05;     // flat call profile: touch everything
        p.fracLoopBranches = 0.42;
        p.fracPatternBranches = 0.40;
        p.loopPeriodMin = 2;
        p.loopPeriodMax = 6;
        p.dataFootprint = 256 << 10;
        footprints.push_back(WorkloadSelector::synthetic(
            "server_sweep", p, 0x5e41));
    }
    return oneGroupSpec("server_capacity", run,
                        std::move(footprints),
                        {ConfigSpec(FrontendVariant::Dcf),
                         ConfigSpec(FrontendVariant::NoDcf),
                         ConfigSpec(FrontendVariant::LElf),
                         ConfigSpec(FrontendVariant::UElf)});
}

} // namespace bench
} // namespace elfsim

#endif // ELFSIM_BENCH_BENCH_SPECS_HH
