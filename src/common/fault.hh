/**
 * @file
 * Per-job cancellation plumbing and the deterministic fault-injection
 * harness that drives the sweep engine's recovery tests.
 *
 * JobControl is the shared control block between a sweep worker and
 * the watchdog monitor: the worker publishes a committed-instruction
 * heartbeat from the Core::run poll point; the monitor (or a SIGINT
 * handler path) raises the cooperative cancellation flag with a
 * reason, and the worker notices at its next poll and unwinds with a
 * typed error. ExecContext carries the block (plus the job's identity)
 * through a thread-local so the core's hot loop needs no new
 * parameters — a run outside any sweep has a null context and pays
 * nothing.
 *
 * FaultInjector is armed from the environment:
 *
 *   ELFSIM_FAULT=<site>:<job>:<tick>[,<site>:<job>:<tick>...]
 *
 * where <site> names the fault to raise when job <job> (submission
 * index, or '*' for every job) reaches simulated cycle <tick> at a
 * poll point:
 *
 *   throw      raise InjectedError (cell -> failed)
 *   panic      trip ELFSIM_PANIC (exercises the recoverable-panic
 *              path; cell -> failed)
 *   transient  raise TransientError on the first attempt only
 *              (cell -> ok after one retry when retries are enabled)
 *   hang       stop committing and spin until the watchdog cancels
 *              (cell -> timeout; requires --stall or --deadline)
 *   slow       sleep 1 ms at every subsequent poll (cell -> timeout
 *              when a deadline is set, otherwise just slow)
 *   tracecache corrupt compiled-trace cache reads: the TraceCache
 *              behaves as if every matching on-disk artifact failed
 *              its checksum, forcing the transparent recompile path
 *              (cell -> ok, just slower; proves a poisoned cache can
 *              never fail a cell). The <tick> field is ignored —
 *              cache loads happen before simulated time starts.
 *   ckptcache  corrupt warm-state checkpoint reads: the
 *              CheckpointStore behaves as if every matching artifact
 *              failed its checksum, forcing the transparent
 *              fast-forward fallback (cell -> ok, just slower). The
 *              <tick> field is ignored, like tracecache.
 *   warmtab    distrust the compiled-trace warming side tables: the
 *              batch warming kernel is bypassed and fast-forward
 *              degrades to the scalar per-instruction loop
 *              (cell -> ok with identical warm state, just slower;
 *              proves the scalar fallback stays live). The <tick>
 *              field is ignored, like tracecache.
 *
 * Network sites reuse the same grammar with the middle field naming a
 * WORKER INDEX (position in the coordinator's --workers list, '*' for
 * every worker) instead of a job, and the last field an ordinal or
 * byte offset. They fire only inside the coordinator process — the
 * hooks live in its connect/stream/upload paths — so a fleet spawned
 * with the variable in its environment inherits the sim sites above
 * but never consults these:
 *
 *   netrefuse  refuse the first N connect attempts to the worker
 *              (N = 0 refuses every attempt; exercises reconnect
 *              backoff, and with '*':0 the whole-fleet-lost fallback)
 *   netdrop    tear the shard stream as "connection closed
 *              mid-stream" at the Nth delivered event (stream line or
 *              artifact upload, counted per worker in program order);
 *              fires once (cells -> requeued, merge unchanged)
 *   nettrunc   truncate the shard stream at raw byte offset B, then
 *              fail it as closed; fires once (a torn line can never
 *              reach the merge)
 *   netcorrupt flip a byte in the Nth artifact payload sent to the
 *              worker; fires once (worker rejects with 400, the
 *              retried upload is intact)
 *   nethb      report the Nth delivered event as a receive timeout —
 *              the observable signature of dropped worker heartbeats
 *              (lease expires, cells requeue); fires once
 *   netslow    sleep ~20 ms before each of the first N sends to the
 *              worker (N = 0: every send; builds stragglers for
 *              hedged dispatch)
 *
 * Injection is deterministic: sim sites key on simulated cycles and
 * the job's submission index; net sites key on (worker index, event
 * ordinal / byte offset), never on wall-clock or thread identity.
 */

#ifndef ELFSIM_COMMON_FAULT_HH
#define ELFSIM_COMMON_FAULT_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace elfsim {

/** Why a job was asked to stop (JobControl::reason). */
enum class CancelReason : int
{
    None = 0,
    Deadline,    ///< per-job wall-clock deadline exceeded
    Stalled,     ///< committed-instruction heartbeat stopped advancing
    Interrupted, ///< global interrupt (SIGINT/SIGTERM)
};

/** Shared control block between one sweep job and the watchdog. */
struct JobControl
{
    std::atomic<bool> cancel{false};
    std::atomic<int> reason{int(CancelReason::None)};
    /** Committed instructions, published from the core's poll point. */
    std::atomic<std::uint64_t> heartbeat{0};

    /** First reason wins; later requests keep the original cause. */
    void
    requestCancel(CancelReason r)
    {
        int expected = int(CancelReason::None);
        reason.compare_exchange_strong(expected, int(r));
        cancel.store(true, std::memory_order_release);
    }

    bool
    cancelled() const
    {
        return cancel.load(std::memory_order_acquire);
    }

    CancelReason
    cancelReason() const
    {
        return CancelReason(reason.load());
    }

    /** Reset for a fresh attempt (bounded retries). */
    void
    reset()
    {
        cancel.store(false);
        reason.store(int(CancelReason::None));
        heartbeat.store(0);
    }
};

/**
 * Identity and control of the sweep job running on this thread.
 * Installed via ScopedExecContext around runSimulation; Core::run
 * polls it periodically (heartbeat, cancellation, fault injection).
 */
struct ExecContext
{
    std::size_t jobIndex = 0;
    unsigned attempt = 1; ///< 1-based; retries increment
    JobControl *control = nullptr;

    /**
     * Called from the core's run loop every few thousand cycles:
     * publishes the heartbeat, honors cancellation (throws
     * TimeoutError / CancelledError), and gives the fault injector
     * its deterministic hook. @a committed is the core's committed
     * instruction count, @a tick its cycle count.
     */
    void poll(std::uint64_t tick, std::uint64_t committed);
};

/** The context installed on this thread, or nullptr outside sweeps. */
ExecContext *currentExecContext();

/** RAII installer for the thread-local ExecContext. */
class ScopedExecContext
{
  public:
    explicit ScopedExecContext(ExecContext &ctx);
    ~ScopedExecContext();
    ScopedExecContext(const ScopedExecContext &) = delete;
    ScopedExecContext &operator=(const ScopedExecContext &) = delete;

  private:
    ExecContext *prev;
};

/** What an armed fault does when it fires. */
enum class FaultKind
{
    Throw,
    Panic,
    Transient,
    Hang,
    Slow,
    TraceCache,
    CkptCache,
    WarmTables,
    NetRefuse,
    NetDrop,
    NetTrunc,
    NetCorrupt,
    NetHeartbeat,
    NetSlow
};

/** True for the coordinator-side network sites (netrefuse &c.). */
bool isNetFault(FaultKind k);

/**
 * One armed fault: fire @a kind in job @a job at cycle @a tick. Net
 * sites reinterpret the fields: @a job is the worker index and
 * @a tick the event ordinal or byte offset (see the file comment).
 */
struct FaultSpec
{
    FaultKind kind = FaultKind::Throw;
    std::size_t job = 0;
    bool anyJob = false; ///< spec used '*' for the job field
    std::uint64_t tick = 0;
};

/** What netEventFault() asks the caller to simulate. */
enum class NetEventFault
{
    None,    ///< deliver the event normally
    Drop,    ///< fail as "connection closed mid-stream"
    Timeout, ///< fail as "receive timeout (lease expired)"
};

/** Deterministic fault-injection harness (see file comment). */
class FaultInjector
{
  public:
    /** Process-wide injector, armed from $ELFSIM_FAULT on first use
     *  (a malformed spec is a fatal user error). */
    static FaultInjector &instance();

    /** Parse a spec string; throws ConfigError on malformed input. */
    static std::vector<FaultSpec> parse(const std::string &spec);

    /** Replace the armed faults (tests; not thread-safe vs poll). */
    void arm(std::vector<FaultSpec> specs);

    /** Drop every armed fault and its fired state. */
    void disarm() { arm({}); }

    /** True when any fault is armed (thread-safe: tests re-arm while
     *  service/worker threads poll concurrently). */
    bool
    armed() const
    {
        std::lock_guard<std::mutex> lk(netMtx);
        return !armedFaults.empty();
    }

    /** Deterministic hook called from ExecContext::poll. */
    void poll(const ExecContext &ctx, std::uint64_t tick);

    /**
     * Hook for the TraceCache's disk-read path: true when a
     * 'tracecache' fault is armed for the job on this thread (or for
     * every job, or when no job context is installed — precompilation
     * runs before any job starts). The tick field is ignored; see the
     * file comment.
     */
    bool shouldCorruptTraceRead() const;

    /** Same hook for the CheckpointStore's disk-read path ('ckptcache'
     *  faults; identical matching rules). */
    bool shouldCorruptCkptRead() const;

    /** Same hook for Core::fastForward's kernel dispatch ('warmtab'
     *  faults; identical matching rules): true means bypass the batch
     *  warming kernel and warm with the scalar loop instead. */
    bool shouldPoisonWarmTables() const;

    // ---- network hooks (coordinator-side; see the file comment) ----
    //
    // Each armed net spec carries a private event counter, reset by
    // arm(); counting is serialized under a mutex but the per-worker
    // event order itself is deterministic because all traffic to one
    // worker flows through that worker's coordinator thread (plus the
    // sequential pre-dispatch staging pass).

    /** True when a 'netrefuse' spec says to refuse this connect
     *  attempt to @a worker (counts one attempt per call). */
    bool netRefuseConnect(std::size_t worker);

    /** Advance the droppable-event counters for @a worker; returns
     *  the failure the caller must simulate for this event ('netdrop'
     *  / 'nethb' sites, each firing once). */
    NetEventFault netEventFault(std::size_t worker);

    /**
     * 'nettrunc' hook for the stream read path: @a soFar raw bytes
     * have been delivered to @a worker's stream and @a incoming more
     * just arrived. Returns how many of them to deliver; a short
     * return consumes the fault, and the caller must then fail the
     * stream as closed (after delivering the allowed prefix).
     */
    std::size_t netTruncAllow(std::size_t worker, std::uint64_t soFar,
                              std::size_t incoming);

    /** True when the next artifact payload sent to @a worker should
     *  be corrupted ('netcorrupt'; counts one upload per call). */
    bool netCorruptArtifact(std::size_t worker);

    /** Milliseconds to stall before the next send to @a worker
     *  ('netslow'; counts one send per call), 0 for none. */
    unsigned netSendDelayMs(std::size_t worker);

  private:
    FaultInjector() = default;

    /**
     * Firing is stateless: throw/panic/transient end the attempt the
     * moment they fire, hang blocks until cancelled and then ends the
     * attempt, and slow deliberately re-fires at every poll. Matching
     * keys only on (job index, attempt, simulated cycle), so the
     * armed list is read-only after arm().
     */
    void fire(const FaultSpec &s, const ExecContext &ctx);

    /** Per-armed-spec firing state for the net sites. */
    struct NetState
    {
        std::uint64_t count = 0; ///< events seen for this spec
        bool spent = false;      ///< one-shot sites that already fired
    };

    std::vector<FaultSpec> armedFaults;
    std::vector<NetState> netState; ///< parallel to armedFaults
    /** Guards armedFaults and the netState counters: arm() runs from
     *  test threads while service/worker threads poll. (mutable: the
     *  read-side hooks are const.) */
    mutable std::mutex netMtx;
};

} // namespace elfsim

#endif // ELFSIM_COMMON_FAULT_HH
