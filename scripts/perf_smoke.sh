#!/usr/bin/env bash
# Quick simulator-throughput smoke (~15-30 s): every 3rd catalog
# workload at full-size windows, single job, schema check, and the
# >10% geomean-MIPS regression gate against the committed
# BENCH_throughput.json (matched on the common rows).
#
#   scripts/perf_smoke.sh           # uses ./build (default preset)
#   BUILD=build-native scripts/perf_smoke.sh   # host-tuned binaries
#
# Full windows (not --quick) keep per-run MIPS comparable with the
# baseline; a marginal pass here still deserves a full
# `build/bench/bench_throughput --jobs 1` before concluding anything
# regressed.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${BUILD:-build}"
BIN="$BUILD/bench/bench_throughput"
[ -x "$BIN" ] || {
    echo "$BIN not built (cmake --build $BUILD)" >&2
    exit 1
}

OUT="$BUILD/results"
mkdir -p "$OUT"

# Warm artifact caches: repeat smokes map the compiled workload
# streams and warm-state checkpoints from disk instead of regenerating
# them. Each cache lives under a subdirectory named after its artifact
# format version (elfsim-trace-v2 / elfsim-ckpt-v1): a format bump
# lands in a fresh directory, so artifacts written by an older or
# newer checkout can never be picked up here and skew the timing
# gates. Bump the path together with the magic string.
TRACE_CACHE="$BUILD/trace-cache/elfsim-trace-v2"
CKPT_CACHE="$BUILD/ckpt-cache/elfsim-ckpt-v1"
mkdir -p "$TRACE_CACHE" "$CKPT_CACHE"

"$BIN" --stride 3 --sampled --jobs 1 --trace-cache "$TRACE_CACHE" \
       --ckpt-cache "$CKPT_CACHE" --json "$OUT/perf_smoke.json"

if [ -f BENCH_throughput.json ]; then
    python3 scripts/check_results.py --throughput \
        --baseline BENCH_throughput.json "$OUT/perf_smoke.json"
else
    python3 scripts/check_results.py --throughput "$OUT/perf_smoke.json"
fi

# Sampled gate: sampling must cover at least one >=10M-instruction
# stream at >=65x the effective MIPS of that workload's detailed
# U-ELF row in the committed baseline (full-run timing; the smoke's
# own strided grid may not include the slow workloads). The best row
# gates — with the batch warming kernel a cold-cache run sits around
# 80-95x and warm re-runs far above — and every ratio is printed so
# a creeping fast-forward regression stays visible.
if [ -f BENCH_throughput.json ]; then
    python3 - "$OUT/perf_smoke.json" BENCH_throughput.json <<'EOF'
import json, sys
new = json.load(open(sys.argv[1]))
base = json.load(open(sys.argv[2]))
detailed = {r["workload"]: r["mips"] for r in base["throughput"]
            if r["variant"] == "U-ELF"}
best = 0.0
rows = 0
for r in new["throughput"]:
    if not r["variant"].endswith("/sampled"):
        continue
    ref = detailed.get(r["workload"])
    if ref is None or ref <= 0:
        print(f"sampled gate: no baseline U-ELF row for "
              f"{r['workload']}, skipping", file=sys.stderr)
        continue
    rows += 1
    ratio = r["mips"] / ref
    best = max(best, ratio)
    print(f"sampled gate: {r['workload']} {r['mips']:.2f} effective "
          f"MIPS vs {ref:.3f} detailed = {ratio:.0f}x")
if rows == 0:
    sys.exit("sampled gate: no sampled rows in document")
if best < 65:
    sys.exit(f"sampled gate: best speedup {best:.0f}x < 65x")
print(f"sampled gate: OK (best {best:.0f}x >= 65x over {rows} rows)")
EOF
fi
