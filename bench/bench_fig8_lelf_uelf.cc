/**
 * @file
 * Figure 8 equivalent: L-ELF and U-ELF IPC relative to DCF, with the
 * average number of instructions fetched per coupled period.
 */

#include <vector>

#include "bench_specs.hh"
#include "bench_util.hh"

using namespace elfsim;

int
main(int argc, char **argv)
{
    const bench::Options opt = bench::parseOptions(argc, argv);
    bench::banner(
        "Figure 8 — L-ELF and U-ELF IPC relative to DCF "
        "(+ avg coupled insts per period)",
        "U-ELF speculates further in coupled mode than L-ELF; more "
        "coupled instructions = more hidden restart latency");

    const SweepSpec spec = bench::finalizeSpec(
        bench::fig8Spec(opt.runOptions()), opt, argv[0]);
    const ExpandedSweep ex = expandSweep(spec);

    SweepRunner runner(bench::specJobs(opt, spec));
    bench::armRunner(runner, spec);
    const std::vector<RunResult> res = runner.run(ex.jobs);

    if (!opt.specPath.empty()) {
        bench::printResultsTable(res, ex.labels);
    } else {
        std::printf("%-18s %8s | %8s %8s | %8s %8s | %6s\n",
                    "workload", "DCF IPC", "L-ELF", "cpl/per",
                    "U-ELF", "cpl/per", "U div");
        for (std::size_t i = 0; i + 2 < res.size(); i += 3) {
            const RunResult &dcf = res[i];
            const RunResult &l = res[i + 1];
            const RunResult &u = res[i + 2];
            std::printf(
                "%-18s %8.3f | %8.3f %8.1f | %8.3f %8.1f | %6llu\n",
                dcf.workload.c_str(), dcf.ipc, l.ipc / dcf.ipc,
                l.avgCoupledInsts, u.ipc / dcf.ipc,
                u.avgCoupledInsts,
                (unsigned long long)u.divergenceFlushes);
            std::fflush(stdout);
        }
        std::printf("\npaper shape: up to +3.6%% (L) / +5.2%% (U) on "
                    "high-MPKI workloads; U-ELF fetches more per "
                    "period than L-ELF.\n");
    }
    bench::exportResults(opt, runner);
    bench::printSweepTiming(runner);
    return bench::exitCode(runner);
}
