#!/usr/bin/env bash
# Build, test, and regenerate every experiment.
#
#   scripts/run_all.sh                  # full experiment windows
#   scripts/run_all.sh --quick          # quarter-size windows (smoke)
#   scripts/run_all.sh --jobs 8         # sweep threads per bench
#   scripts/run_all.sh --dist-smoke     # also shard one grid across a
#                                       # 2-worker fleet and byte-diff
#                                       # the merge vs a local run
#   scripts/run_all.sh --chaos-smoke    # also run one seeded
#                                       # fault-injection sweep against
#                                       # a spawned fleet
#                                       # (scripts/chaos_soak.sh)
#
# Sweep thread count: --jobs N beats $ELFSIM_JOBS beats nproc.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${ELFSIM_JOBS:-$(nproc 2>/dev/null || echo 1)}"
DIST_SMOKE=0
CHAOS_SMOKE=0
EXTRA=()
while [ $# -gt 0 ]; do
    case "$1" in
        --jobs)
            JOBS="$2"
            shift 2
            ;;
        --dist-smoke)
            DIST_SMOKE=1
            shift
            ;;
        --chaos-smoke)
            CHAOS_SMOKE=1
            shift
            ;;
        *)
            EXTRA+=("$1")
            shift
            ;;
    esac
done

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

# Sweep benches drop a machine-readable artifact per figure here.
RESULTS=build/results
mkdir -p "$RESULTS"

# One shared compiled-trace cache for the whole campaign: the first
# bench touching a workload compiles and saves its trace, every later
# bench maps the artifact (content-keyed, so stale files just miss).
# Caches live under a subdirectory named after the artifact format
# version (elfsim-trace-v2 / elfsim-ckpt-v1), so artifacts written by
# a checkout with a different format can never be picked up here —
# keep the path in sync with the magic string when bumping a format.
TRACE_CACHE=build/trace-cache/elfsim-trace-v2
CKPT_CACHE=build/ckpt-cache/elfsim-ckpt-v1
mkdir -p "$TRACE_CACHE" "$CKPT_CACHE"

# A bench killed mid-export leaves a truncated JSON behind; never let
# such a partial artifact masquerade as results.
CURRENT_ARTIFACT=""
remove_partial() {
    if [ -n "$CURRENT_ARTIFACT" ] && [ -f "$CURRENT_ARTIFACT" ]; then
        echo "removing partial artifact $CURRENT_ARTIFACT" >&2
        rm -f "$CURRENT_ARTIFACT"
    fi
    CURRENT_ARTIFACT=""
}
trap 'remove_partial; echo "interrupted" >&2; exit 130' INT TERM

ARTIFACTS=()
SPECS=()
FAILED=()
for b in build/bench/*; do
    [ -x "$b" ] && [ -f "$b" ] || continue
    name="$(basename "$b")"
    echo "######## $b"
    status=0
    case "$name" in
        bench_micro_components)
            # google-benchmark binary: rejects unknown flags.
            "$b" || status=$?
            ;;
        elfsimd)
            # Long-running daemon, not a batch experiment — it would
            # block the campaign. test_service covers it in-process.
            echo "skipping daemon binary (see test_service)"
            ;;
        elfsim_coord)
            # Distributed coordinator: needs a spec and a fleet, not a
            # batch experiment. The opt-in --dist-smoke step below (and
            # test_dist) exercise it.
            echo "skipping coordinator binary (see --dist-smoke)"
            ;;
        bench_fig2_timing|bench_table1_workloads|bench_table2_config)
            # Characterization tables: no RunResults to export.
            "$b" --jobs "$JOBS" --trace-cache "$TRACE_CACHE" \
                 ${EXTRA[@]+"${EXTRA[@]}"} || status=$?
            ;;
        bench_throughput)
            # Simulator-speed gate: separate schema + regression
            # check against the committed baseline. Run single-job so
            # per-run wall clocks are not distorted by oversubscription
            # (scripts/perf_smoke.sh is the quick variant; build the
            # release-native preset for host-tuned numbers).
            CURRENT_ARTIFACT="$RESULTS/$name.json"
            "$b" --jobs 1 --sampled --json "$RESULTS/$name.json" \
                 --trace-cache "$TRACE_CACHE" \
                 --ckpt-cache "$CKPT_CACHE" \
                 ${EXTRA[@]+"${EXTRA[@]}"} || status=$?
            if [ "$status" -eq 0 ]; then
                CURRENT_ARTIFACT=""
                if [ -f BENCH_throughput.json ]; then
                    python3 scripts/check_results.py --throughput \
                        --baseline BENCH_throughput.json \
                        "$RESULTS/$name.json" || status=$?
                else
                    python3 scripts/check_results.py --throughput \
                        "$RESULTS/$name.json" || status=$?
                fi
            fi
            ;;
        *)
            # --dump-spec archives the exact declarative grid next to
            # the results: the pair re-runs bit-identically later via
            # `--spec FILE` or a `POST /sweep` to elfsimd.
            CURRENT_ARTIFACT="$RESULTS/$name.json"
            "$b" --jobs "$JOBS" --json "$RESULTS/$name.json" \
                 --dump-spec "$RESULTS/$name.spec.json" \
                 --trace-cache "$TRACE_CACHE" \
                 ${EXTRA[@]+"${EXTRA[@]}"} || status=$?
            if [ "$status" -eq 0 ]; then
                ARTIFACTS+=("$RESULTS/$name.json")
                SPECS+=("$RESULTS/$name.spec.json")
            fi
            CURRENT_ARTIFACT=""
            ;;
    esac
    if [ "$status" -ne 0 ]; then
        # Exit 3 means the sweep completed but marked cells failed:
        # the artifact is a valid v2 document with the holes recorded,
        # so keep it for inspection. Anything else is a crash or an
        # export error, and its artifact (if any) is a stale partial.
        if [ "$status" -ne 3 ]; then
            remove_partial
        fi
        CURRENT_ARTIFACT=""
        FAILED+=("$name (exit $status)")
        echo "FAILED: $name (exit $status)" >&2
    fi
done

if [ ${#ARTIFACTS[@]} -gt 0 ]; then
    echo "######## schema check"
    python3 scripts/check_results.py "${ARTIFACTS[@]}" \
        || FAILED+=("schema check")
fi
if [ ${#SPECS[@]} -gt 0 ]; then
    echo "######## sweepspec check"
    python3 scripts/check_results.py --spec "${SPECS[@]}" \
        || FAILED+=("sweepspec check")
fi

# Opt-in distributed smoke: shard one archived grid across a spawned
# 2-worker fleet and require the merged document to be byte-identical
# to a single-process run of the same spec. Any scheduling difference
# leaking into the output bytes fails the cmp.
if [ "$DIST_SMOKE" -eq 1 ]; then
    echo "######## distributed smoke (coordinator + 2 local workers)"
    if [ ${#SPECS[@]} -eq 0 ]; then
        FAILED+=("dist smoke (no archived spec to run)")
    else
        SPEC="${SPECS[0]}"
        LEDGER="$RESULTS/dist_smoke.ledger.jsonl"
        rm -f "$LEDGER"
        status=0
        build/bench/elfsim_coord --spec "$SPEC" --local \
            --jobs "$JOBS" --trace-cache "$TRACE_CACHE" \
            --json "$RESULTS/dist_smoke.local.json" || status=$?
        [ "$status" -eq 0 ] || FAILED+=("dist smoke local (exit $status)")
        status=0
        build/bench/elfsim_coord --spec "$SPEC" --spawn 2 \
            --worker-jobs "$JOBS" --trace-cache "$TRACE_CACHE" \
            --ledger "$LEDGER" \
            --json "$RESULTS/dist_smoke.fleet.json" || status=$?
        [ "$status" -eq 0 ] || FAILED+=("dist smoke fleet (exit $status)")
        if [ "$status" -eq 0 ]; then
            cmp "$RESULTS/dist_smoke.local.json" \
                "$RESULTS/dist_smoke.fleet.json" \
                || FAILED+=("dist smoke (merged bytes differ)")
            python3 scripts/check_results.py --ledger "$LEDGER" \
                || FAILED+=("dist smoke (ledger check)")
        fi
    fi
fi

# Opt-in chaos smoke: one seeded round per fault class (plus the
# quarantine / hedge / fleet-loss scenarios) against a spawned
# 2-worker fleet; every merged document must be byte-identical to a
# local run. scripts/chaos_soak.sh alone runs the longer soak.
if [ "$CHAOS_SMOKE" -eq 1 ]; then
    echo "######## chaos smoke (seeded fault injection)"
    scripts/chaos_soak.sh --rounds 1 --out "$RESULTS/chaos-soak" \
        || FAILED+=("chaos smoke")
fi

if [ ${#FAILED[@]} -gt 0 ]; then
    echo "######## ${#FAILED[@]} step(s) failed:" >&2
    printf '  %s\n' "${FAILED[@]}" >&2
    exit 1
fi
