#include "frontend/coupled.hh"

#include "common/logging.hh"

#include <cstdio>

namespace elfsim {

namespace {

/** Derive resolution/misprediction once the prediction is bound. */
void
resolveBranch(DynInst &di)
{
    if (!di.si->isBranchInst()) {
        di.mispredict = false;
        return;
    }
    if (di.wrongPath) {
        di.taken = di.predTaken;
        di.actualNext = di.predTarget;
        di.mispredict = false;
        return;
    }
    di.mispredict = (di.taken != di.predTaken) ||
                    (di.taken && di.actualNext != di.predTarget);
}

} // namespace

CoupledFetchEngine::CoupledFetchEngine(const FetchParams &params,
                                       MemHierarchy &mem,
                                       InstSupply &supply,
                                       CheckpointQueue &ckpts,
                                       CoupledPolicy &policy)
    : params(params), mem(mem), supply(supply), ckpts(ckpts),
      policy(policy)
{
}

void
CoupledFetchEngine::start(Addr pc, Cycle now)
{
    fetchPC = pc;
    stalledControl = false;
    busyUntil = now; // can fetch next cycle
}

void
CoupledFetchEngine::resumeAt(Addr pc, Cycle now)
{
    ELFSIM_ASSERT(active() || pc != invalidAddr, "resume without pc");
    fetchPC = pc;
    stalledControl = false;
    busyUntil = now;
}

unsigned
CoupledFetchEngine::tick(Cycle now, FetchBundle &out)
{
    if (!active() || stalledControl)
        return 0;
    if (now < busyUntil) {
        ++st.icacheStallCycles;
        return 0;
    }

    unsigned produced = 0;
    Addr linesUsed[2] = {invalidAddr, invalidAddr};
    unsigned numLines = 0;
    const unsigned lineBytes = mem.l0i().config().lineBytes;

    while (produced < params.width) {
        const Addr pc = fetchPC;
        const Addr line = pc / lineBytes;

        bool known = false;
        for (unsigned i = 0; i < numLines; ++i)
            known |= linesUsed[i] == line;
        if (!known) {
            if (numLines == 2)
                break;
            if (numLines == 1 &&
                mem.l0i().bank(line * lineBytes) ==
                    mem.l0i().bank(linesUsed[0] * lineBytes))
                break;
            const Cycle lat = mem.instFetch(pc, now);
            if (lat > mem.l0i().config().hitLatency) {
                busyUntil = now + lat;
                break;
            }
            linesUsed[numLines++] = line;
        }

        if (ckpts.full())
            break;

        DynInst di = supply.make(pc, now, FetchMode::Coupled);

        if (!di.si->isBranchInst()) {
            di.hasPrediction = false;
            di.predTarget = di.si->nextPC();
            fetchPC = pc + instBytes;
            if (di.wrongPath)
                ++st.wrongPathInsts;
            out.push_back(std::move(di));
            ++produced;
            ++st.insts;
            continue;
        }

        // Branch: claim a checkpoint-queue entry now; its payload is
        // populated later from FAQ information (paper Section IV-D).
        di.checkpointId = ckpts.allocate(di.seq, false);

        unsigned bubbles = 0;
        bool stall = false;

        switch (di.si->branch) {
          case BranchKind::UncondDirect:
          case BranchKind::DirectCall:
            // Target available from the instruction word (pre-decode
            // bits identify the branch at fetch output).
            di.hasPrediction = true;
            di.predTaken = true;
            di.predTarget = di.si->directTarget;
            if (di.si->branch == BranchKind::DirectCall)
                policy.onCall(pc + instBytes);
            else
                policy.onUncond(pc);
            di.historyPushed = policy.pushesHistory();
            bubbles = 1 + policy.extraBubbles(di);
            break;
          case BranchKind::CondDirect:
            if (!policy.predictCond(di)) {
                stall = true;
                break;
            }
            if (di.predTaken)
                bubbles = 1 + policy.extraBubbles(di);
            break;
          case BranchKind::Return:
            if (!policy.predictReturn(di)) {
                stall = true;
                break;
            }
            bubbles = 1 + policy.extraBubbles(di);
            break;
          case BranchKind::IndirectJump:
          case BranchKind::IndirectCall:
            if (!policy.predictIndirect(di)) {
                stall = true;
                break;
            }
            if (di.si->branch == BranchKind::IndirectCall)
                policy.onCall(pc + instBytes);
            bubbles = 1 + policy.extraBubbles(di);
            break;
          default:
            ELFSIM_PANIC("unexpected branch kind");
        }

        if (stall) {
            // The decision cannot be speculated past: fetch the
            // branch itself, then hold until resteered or resynced.
            if (di.si->branch == BranchKind::CondDirect)
                ++st.stallsCond;
            else if (di.si->branch == BranchKind::Return)
                ++st.stallsReturn;
            else
                ++st.stallsIndirect;
            di.hasPrediction = false;
            di.predTaken = false;
            di.predTarget = di.si->nextPC();
            di.fetchStalled = true;
            resolveBranch(di);
            stalledControl = true;
            ++st.controlStalls;
#ifdef ELFSIM_TRACE_SEQ
            if (di.seq >= ELFSIM_TRACE_SEQ && di.seq <= ELFSIM_TRACE_SEQ + 200)
                std::fprintf(stderr, "[%llu] stall seq=%llu pc=0x%llx\n",
                             (unsigned long long)now,
                             (unsigned long long)di.seq,
                             (unsigned long long)di.pc());
#endif
            out.push_back(std::move(di));
            ++produced;
            ++st.insts;
            break;
        }

        if (di.si->branch != BranchKind::UncondDirect &&
            di.si->branch != BranchKind::DirectCall)
            di.historyPushed = policy.pushesHistory();
        resolveBranch(di);
        fetchPC = di.predTaken ? di.predTarget : pc + instBytes;
        out.push_back(std::move(di));
        ++produced;
        ++st.insts;
        if (di.wrongPath)
            ++st.wrongPathInsts;

        if (bubbles) {
            // Taken-branch penalty: the fetch group ends here.
            st.takenBubbleCycles += bubbles;
            busyUntil = now + 1 + bubbles;
            break;
        }
    }
    return produced;
}

} // namespace elfsim
