#include "workload/oracle_stream.hh"

#include "workload/compiled_trace.hh"

namespace elfsim {

void
OracleGen::reset(const Program &prog)
{
    pc = prog.entryPC();
    // The call stack is capped at maxCallDepth; pre-sizing it keeps
    // deep call chains from growing the vector mid-simulation.
    callStack.clear();
    callStack.reserve(maxCallDepth);
    condCount.assign(prog.behaviors().numConds(), 0);
    indCount.assign(prog.behaviors().numIndirects(), 0);
    memCount.assign(prog.behaviors().numMems(), 0);
}

OracleInst
OracleGen::step(const Program &prog)
{
    const StaticInst *si = prog.instAt(pc);
    ELFSIM_ASSERT(si != nullptr,
                  "architectural path left the program image at 0x%llx",
                  (unsigned long long)pc);

    OracleInst oi;
    oi.si = si;
    Addr next = si->nextPC();

    if (si->isMemInst()) {
        const MemSpec &m = prog.behaviors().mem(si->behavior);
        oi.memAddr = m.address(memCount[si->behavior]++);
    }

    switch (si->branch) {
      case BranchKind::None:
        break;
      case BranchKind::CondDirect: {
        const CondSpec &c = prog.behaviors().cond(si->behavior);
        oi.taken = c.outcome(condCount[si->behavior]++);
        if (oi.taken)
            next = si->directTarget;
        break;
      }
      case BranchKind::UncondDirect:
        oi.taken = true;
        next = si->directTarget;
        break;
      case BranchKind::DirectCall:
        oi.taken = true;
        if (callStack.size() >= maxCallDepth)
            callStack.erase(callStack.begin());
        callStack.push_back(si->nextPC());
        next = si->directTarget;
        break;
      case BranchKind::IndirectJump: {
        const IndirectSpec &t = prog.behaviors().indirect(si->behavior);
        oi.taken = true;
        next = t.target(indCount[si->behavior]++);
        break;
      }
      case BranchKind::IndirectCall: {
        const IndirectSpec &t = prog.behaviors().indirect(si->behavior);
        oi.taken = true;
        if (callStack.size() >= maxCallDepth)
            callStack.erase(callStack.begin());
        callStack.push_back(si->nextPC());
        next = t.target(indCount[si->behavior]++);
        break;
      }
      case BranchKind::Return:
        oi.taken = true;
        if (callStack.empty()) {
            next = prog.entryPC();
        } else {
            next = callStack.back();
            callStack.pop_back();
        }
        break;
    }

    oi.nextPC = next;
    pc = next;
    return oi;
}

OracleStream::OracleStream(const Program &prog, std::size_t window_cap,
                           std::shared_ptr<const CompiledTrace> trace)
    : prog(prog), windowCap(window_cap), window(window_cap),
      trace(std::move(trace))
{
    gen.reset(prog);
}

OracleStream::~OracleStream() = default;

const OracleInst &
OracleStream::at(SeqNum idx)
{
    ELFSIM_ASSERT(idx >= baseIdx,
                  "oracle index %llu older than window base %llu",
                  (unsigned long long)idx, (unsigned long long)baseIdx);
    while (idx >= baseIdx + window.size())
        generateOne();
    return window.at(idx - baseIdx);
}

void
OracleStream::retireUpTo(SeqNum idx)
{
    while (!window.empty() && baseIdx <= idx) {
        window.dropFront();
        ++baseIdx;
    }
    if (window.empty() && baseIdx <= idx)
        baseIdx = idx + 1;
}

void
OracleStream::seekTo(SeqNum next_idx)
{
    ELFSIM_ASSERT(window.empty(),
                  "oracle seek with %zu unretired instructions",
                  window.size());
    ELFSIM_ASSERT(next_idx >= 1, "oracle seek to index 0");
    const InstCount pos = next_idx - 1;
    ELFSIM_ASSERT((trace && pos <= trace->size()) || pos == 0,
                  "oracle seek past the compiled prefix needs a "
                  "generator state");
    baseIdx = next_idx;
    genCursor = pos;
    tailAdopted = false;
    if (pos == 0)
        gen.reset(prog);
}

void
OracleStream::seekTo(SeqNum next_idx, const OracleGen &state)
{
    ELFSIM_ASSERT(window.empty(),
                  "oracle seek with %zu unretired instructions",
                  window.size());
    ELFSIM_ASSERT(next_idx >= 1, "oracle seek to index 0");
    const InstCount pos = next_idx - 1;
    baseIdx = next_idx;
    genCursor = pos;
    if (trace && pos <= trace->size()) {
        // Inside the compiled prefix the arrays are authoritative;
        // the generator re-adopts the trace end state at the edge.
        tailAdopted = false;
        return;
    }
    gen = state;
    tailAdopted = trace != nullptr;
}

void
OracleStream::generateOne()
{
    ELFSIM_ASSERT(window.size() < windowCap,
                  "oracle window overflow (%zu insts unretired)",
                  window.size());

    if (trace) {
        if (genCursor < trace->size()) {
            // Hot path with a compiled backing store: four linear
            // reads from the shared immutable buffer, no spec
            // evaluation and no hashing.
            OracleInst oi;
            oi.si = &prog.instructions()[trace->siIndex(genCursor)];
            oi.taken = trace->taken(genCursor);
            oi.nextPC = trace->nextPC(genCursor);
            oi.memAddr = trace->memAddr(genCursor);
            window.push(oi);
            ++genCursor;
            return;
        }
        if (!tailAdopted) {
            // Fell off the compiled prefix (fetch runs a little ahead
            // of the instruction budget the trace was sized for):
            // resume the lazy generator from the trace's end state.
            gen = trace->endState();
            tailAdopted = true;
        }
    }

    window.push(gen.step(prog));
    ++genCursor;
}

} // namespace elfsim
