#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <utility>

#include "common/inline_vec.hh"

using namespace elfsim;

namespace {

/** True iff @a p points inside the object footprint of @a v. */
template <typename V>
bool
pointsInside(const V &v, const void *p)
{
    const char *lo = reinterpret_cast<const char *>(&v);
    return p >= lo && p < lo + sizeof(V);
}

TEST(InlineVec, StartsInlineWithFullInlineCapacity)
{
    InlineVec<int, 8> v;
    EXPECT_TRUE(v.empty());
    EXPECT_EQ(v.size(), 0u);
    EXPECT_EQ(v.capacity(), 8u);
    EXPECT_TRUE(pointsInside(v, v.data()));

    for (int i = 0; i < 8; ++i)
        v.push_back(i);
    EXPECT_EQ(v.size(), 8u);
    EXPECT_EQ(v.capacity(), 8u);
    EXPECT_TRUE(pointsInside(v, v.data()));
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(v[std::size_t(i)], i);
}

TEST(InlineVec, GrowthPastInlineCapacitySpillsAndPreserves)
{
    InlineVec<int, 8> v;
    for (int i = 0; i < 20; ++i)
        v.push_back(i * 3);
    EXPECT_EQ(v.size(), 20u);
    EXPECT_GE(v.capacity(), 20u);
    EXPECT_FALSE(pointsInside(v, v.data()));
    for (int i = 0; i < 20; ++i)
        EXPECT_EQ(v[std::size_t(i)], i * 3);
    EXPECT_EQ(v.front(), 0);
    EXPECT_EQ(v.back(), 57);
}

TEST(InlineVec, ClearRetainsSpillCapacity)
{
    InlineVec<int, 8> v;
    for (int i = 0; i < 20; ++i)
        v.push_back(i);
    const std::size_t grown = v.capacity();
    const int *spill = v.data();

    v.clear();
    EXPECT_TRUE(v.empty());
    EXPECT_EQ(v.capacity(), grown);
    EXPECT_EQ(v.data(), spill);

    // Refilling to the old high-water mark must not reallocate.
    for (int i = 0; i < 20; ++i)
        v.push_back(i);
    EXPECT_EQ(v.capacity(), grown);
    EXPECT_EQ(v.data(), spill);
}

TEST(InlineVec, ReserveAndPopBack)
{
    InlineVec<int, 4> v;
    v.reserve(2);  // below inline capacity: no-op
    EXPECT_EQ(v.capacity(), 4u);
    v.reserve(50);
    EXPECT_GE(v.capacity(), 50u);
    EXPECT_TRUE(v.empty());

    v.push_back(1);
    v.push_back(2);
    v.pop_back();
    EXPECT_EQ(v.size(), 1u);
    EXPECT_EQ(v.back(), 1);
}

TEST(InlineVec, MoveOnlyElementsSurviveGrowth)
{
    InlineVec<std::unique_ptr<int>, 2> v;
    for (int i = 0; i < 10; ++i)
        v.emplace_back(std::make_unique<int>(i));
    ASSERT_EQ(v.size(), 10u);
    for (int i = 0; i < 10; ++i) {
        ASSERT_NE(v[std::size_t(i)], nullptr);
        EXPECT_EQ(*v[std::size_t(i)], i);
    }
}

struct Counted
{
    static int live;
    int tag;
    explicit Counted(int t) : tag(t) { ++live; }
    Counted(Counted &&o) noexcept : tag(o.tag) { ++live; }
    ~Counted() { --live; }
};
int Counted::live = 0;

TEST(InlineVec, DestroysEveryElementExactlyOnce)
{
    {
        InlineVec<Counted, 2> v;
        for (int i = 0; i < 9; ++i)
            v.emplace_back(i);
        EXPECT_EQ(Counted::live, 9);
        v.pop_back();
        EXPECT_EQ(Counted::live, 8);
        v.clear();
        EXPECT_EQ(Counted::live, 0);
        for (int i = 0; i < 3; ++i)
            v.emplace_back(i);
        EXPECT_EQ(Counted::live, 3);
    }
    EXPECT_EQ(Counted::live, 0);
}

} // namespace
