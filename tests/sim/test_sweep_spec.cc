/**
 * @file
 * SweepSpec tests: JSON parse/expand/serialize round-trips, rejection
 * of malformed specs (unknown fields, contradictory sampling), the
 * SimConfig knob registry, and — the load-bearing guarantee of the
 * bench migration — spec-vs-legacy grid identity: every bench's
 * bench_specs.hh builder expands to exactly the grid the old
 * hand-rolled loops assembled (same order, same configs, same
 * windows), checked via jobKey + configFingerprint.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "bench_specs.hh"
#include "common/error.hh"
#include "sim/export.hh"
#include "sim/sweep_spec.hh"
#include "workload/builders.hh"
#include "workload/catalog.hh"

using namespace elfsim;

namespace {

RunOptions
smallWindow()
{
    RunOptions o;
    o.warmupInsts = 2000;
    o.measureInsts = 4000;
    return o;
}

std::string
specJson(const SweepSpec &spec)
{
    std::ostringstream os;
    writeSweepSpec(os, spec);
    return os.str();
}

/** Identity of one grid cell: everything jobKey covers plus the full
 *  configuration fingerprint (jobKey alone ignores knob overrides). */
std::string
cellKey(const SweepRunner &r, const SweepJob &j, std::size_t i)
{
    return r.jobKey(j, i) + "|cfg" +
           std::to_string(configFingerprint(j.cfg));
}

void
expectSameGrid(const std::vector<SweepJob> &legacy,
               const std::vector<SweepJob> &fromSpec)
{
    SweepRunner r(1);
    ASSERT_EQ(legacy.size(), fromSpec.size());
    for (std::size_t i = 0; i < legacy.size(); ++i)
        EXPECT_EQ(cellKey(r, legacy[i], i), cellKey(r, fromSpec[i], i))
            << "grid cell " << i;
}

} // namespace

// ---------------------------------------------------------------------
// Round-trips
// ---------------------------------------------------------------------

TEST(SweepSpecJson, CanonicalRoundTripIsByteIdentical)
{
    // A spec exercising every selector kind and override type.
    SweepSpec spec = bench::ablationDcfSpec(smallWindow());
    spec.name = "round_trip";
    spec.jobs = 3;
    spec.baseSeed = 42;
    spec.policy.deadlineSeconds = 2.5;
    spec.policy.maxRetries = 1;
    SweepGroup extra;
    extra.workloads = {
        WorkloadSelector::micro("random_branch_loop", {8, 0.5}),
        WorkloadSelector::set("elf_relevant", 2),
    };
    extra.configs = {ConfigSpec(FrontendVariant::UElf, "sampled row")
                         .setText("payload_policy", "ideal")};
    extra.hasRun = true;
    extra.run.warmupInsts = 0;
    extra.run.measureInsts = 100000;
    extra.run.samplePeriodInsts = 10000;
    extra.run.sampleLengthInsts = 500;
    extra.run.sampleWarmupInsts = 100;
    spec.groups.push_back(std::move(extra));

    const std::string once = specJson(spec);
    const SweepSpec parsed = parseSweepSpec(once);
    EXPECT_EQ(once, specJson(parsed));
}

TEST(SweepSpecJson, ParsedSpecExpandsToTheSameGrid)
{
    const SweepSpec spec = bench::fig7Spec(smallWindow());
    const SweepSpec parsed = parseSweepSpec(specJson(spec));
    expectSameGrid(expandSweep(spec).jobs, expandSweep(parsed).jobs);
}

TEST(SweepSpecJson, ShorthandWorkloadsConfigsFormOneGroup)
{
    const SweepSpec s = parseSweepSpec(
        "{\"schema\":\"elfsim-sweepspec-v1\","
        "\"workloads\":[{\"name\":\"641.leela\"}],"
        "\"configs\":[{\"variant\":\"DCF\"}]}");
    ASSERT_EQ(s.groups.size(), 1u);
    EXPECT_EQ(s.groups[0].workloads.size(), 1u);
    EXPECT_EQ(s.groups[0].configs.size(), 1u);
}

// ---------------------------------------------------------------------
// Rejection
// ---------------------------------------------------------------------

TEST(SweepSpecJson, UnknownFieldIsAParseError)
{
    EXPECT_THROW(parseSweepSpec(
                     "{\"schema\":\"elfsim-sweepspec-v1\","
                     "\"wrkloads\":[]}"),
                 ParseError);
    EXPECT_THROW(parseSweepSpec(
                     "{\"schema\":\"elfsim-sweepspec-v1\","
                     "\"run\":{\"warmup\":1}}"),
                 ParseError);
}

TEST(SweepSpecJson, MissingOrWrongSchemaRejected)
{
    EXPECT_THROW(parseSweepSpec("{}"), ParseError);
    EXPECT_THROW(parseSweepSpec("{\"schema\":\"elfsim-results-v2\"}"),
                 ParseError);
}

TEST(SweepSpecJson, KindForeignSelectorFieldsRejected)
{
    const auto spec = [](const char *selector) {
        return std::string("{\"schema\":\"elfsim-sweepspec-v1\","
                           "\"workloads\":[") +
               selector +
               "],\"configs\":[{\"variant\":\"DCF\"}]}";
    };
    // stride is set-only, args micro-only, seed/params
    // synthetic-only; anywhere else they would be silently ignored.
    EXPECT_THROW(parseSweepSpec(spec(
                     "{\"name\":\"641.leela\",\"stride\":3}")),
                 ParseError);
    EXPECT_THROW(parseSweepSpec(spec(
                     "{\"suite\":\"spec2017\",\"stride\":3}")),
                 ParseError);
    EXPECT_THROW(parseSweepSpec(spec(
                     "{\"name\":\"641.leela\",\"args\":[1,2]}")),
                 ParseError);
    EXPECT_THROW(parseSweepSpec(spec(
                     "{\"name\":\"641.leela\",\"seed\":7}")),
                 ParseError);
    EXPECT_THROW(parseSweepSpec(spec(
                     "{\"set\":\"catalog\",\"params\":{}}")),
                 ParseError);
    // Field order must not matter: aux field before the kind key.
    EXPECT_THROW(parseSweepSpec(spec(
                     "{\"stride\":3,\"name\":\"641.leela\"}")),
                 ParseError);
    // The legitimate pairings still parse.
    EXPECT_NO_THROW(parseSweepSpec(spec(
        "{\"set\":\"catalog\",\"stride\":3}")));
    EXPECT_NO_THROW(parseSweepSpec(spec(
        "{\"synthetic\":\"s\",\"seed\":7,\"params\":{}}")));
}

TEST(SweepSpecJson, ShorthandMixedWithGroupsRejected)
{
    EXPECT_THROW(
        parseSweepSpec("{\"schema\":\"elfsim-sweepspec-v1\","
                       "\"groups\":[],"
                       "\"workloads\":[{\"name\":\"641.leela\"}]}"),
        ParseError);
}

TEST(SweepSpecValidate, ContradictorySamplingRejected)
{
    SweepSpec spec = bench::fig3Spec(smallWindow());
    spec.run.samplePeriodInsts = 1000; // period without a length
    EXPECT_THROW(validateSweepSpec(spec), ConfigError);

    spec.run.sampleLengthInsts = 2000; // length exceeds period
    EXPECT_THROW(validateSweepSpec(spec), ConfigError);

    spec.run.sampleLengthInsts = 500;
    spec.run.sampleWarmupInsts = 600; // warmup+length exceed period
    EXPECT_THROW(validateSweepSpec(spec), ConfigError);

    spec.run.sampleWarmupInsts = 100;
    EXPECT_NO_THROW(validateSweepSpec(spec));
}

TEST(SweepSpecValidate, EmptyAndUnknownPiecesRejected)
{
    SweepSpec empty;
    EXPECT_THROW(validateSweepSpec(empty), ConfigError);

    SweepSpec spec = bench::fig3Spec(smallWindow());
    spec.groups[0].workloads[0] = WorkloadSelector::byName("no.such");
    EXPECT_THROW(validateSweepSpec(spec), ConfigError);

    spec = bench::fig3Spec(smallWindow());
    spec.groups[0].configs[0].setU64("no_such_knob", 1);
    EXPECT_THROW(validateSweepSpec(spec), ConfigError);
}

// ---------------------------------------------------------------------
// Knob registry
// ---------------------------------------------------------------------

TEST(SimKnobs, RegistryAppliesOverrides)
{
    SimConfig cfg = makeConfig(FrontendVariant::Dcf);
    applySimKnob(cfg, "bp1_to_fe", SpecValue::ofU64(7));
    EXPECT_EQ(cfg.bp1ToFe, 7u);
    applySimKnob(cfg, "faq_entries", SpecValue::ofU64(4));
    EXPECT_EQ(cfg.faqEntries, 4u);
    applySimKnob(cfg, "btb.l0.entries", SpecValue::ofU64(96));
    EXPECT_EQ(cfg.btb.l0.entries, 96u);
    applySimKnob(cfg, "payload_policy", SpecValue::ofText("ideal"));
    EXPECT_EQ(cfg.payloadPolicy, PayloadPolicy::Ideal);
    applySimKnob(cfg, "cond_elf_require_saturation",
                 SpecValue::ofFlag(false));
    EXPECT_FALSE(cfg.condElfRequireSaturation);
    applySimKnob(cfg, "coupled.cond_kind",
                 SpecValue::ofText("gshare"));
    EXPECT_EQ(cfg.coupledPreds.condKind, CoupledCondKind::Gshare);
}

TEST(SimKnobs, UnknownKeyAndWrongTypeThrow)
{
    SimConfig cfg = makeConfig(FrontendVariant::Dcf);
    EXPECT_THROW(applySimKnob(cfg, "nope", SpecValue::ofU64(1)),
                 ConfigError);
    EXPECT_THROW(
        applySimKnob(cfg, "bp1_to_fe", SpecValue::ofText("deep")),
        ConfigError);
    EXPECT_THROW(
        applySimKnob(cfg, "bp1_to_fe", SpecValue::ofReal(2.5)),
        ConfigError);
    EXPECT_THROW(
        applySimKnob(cfg, "payload_policy",
                     SpecValue::ofText("no_such_policy")),
        ConfigError);
}

// ---------------------------------------------------------------------
// Spec-vs-legacy grid identity, one case per migrated bench. Each
// "legacy" grid is the verbatim nested loop the bench ran before the
// migration.
// ---------------------------------------------------------------------

TEST(SpecVsLegacy, Fig3)
{
    const RunOptions o = smallWindow();
    static Program p = microRandomBranchLoop(8, 0.5);
    std::vector<SweepJob> legacy;
    for (FrontendVariant v :
         {FrontendVariant::NoDcf, FrontendVariant::Dcf,
          FrontendVariant::LElf, FrontendVariant::UElf})
        legacy.push_back(makeVariantJob(p, v, o));
    expectSameGrid(legacy, expandSweep(bench::fig3Spec(o)).jobs);
}

TEST(SpecVsLegacy, Fig6)
{
    const RunOptions o = smallWindow();
    static std::deque<Program> programs;
    programs.clear();
    std::vector<SweepJob> legacy;
    for (const std::string &name : elfRelevantWorkloads()) {
        programs.push_back(buildWorkload(*findWorkload(name)));
        for (FrontendVariant v :
             {FrontendVariant::Dcf, FrontendVariant::NoDcf})
            legacy.push_back(makeVariantJob(programs.back(), v, o));
    }
    expectSameGrid(legacy, expandSweep(bench::fig6Spec(o)).jobs);
}

TEST(SpecVsLegacy, Fig7)
{
    const RunOptions o = smallWindow();
    static std::deque<Program> programs;
    programs.clear();
    std::vector<SweepJob> legacy;
    for (const std::string &name : elfRelevantWorkloads()) {
        programs.push_back(buildWorkload(*findWorkload(name)));
        for (FrontendVariant v :
             {FrontendVariant::Dcf, FrontendVariant::LElf,
              FrontendVariant::RetElf, FrontendVariant::IndElf,
              FrontendVariant::CondElf})
            legacy.push_back(makeVariantJob(programs.back(), v, o));
    }
    expectSameGrid(legacy, expandSweep(bench::fig7Spec(o)).jobs);
}

TEST(SpecVsLegacy, Fig8)
{
    const RunOptions o = smallWindow();
    static std::deque<Program> programs;
    programs.clear();
    std::vector<SweepJob> legacy;
    for (const std::string &name : elfRelevantWorkloads()) {
        programs.push_back(buildWorkload(*findWorkload(name)));
        for (FrontendVariant v :
             {FrontendVariant::Dcf, FrontendVariant::LElf,
              FrontendVariant::UElf})
            legacy.push_back(makeVariantJob(programs.back(), v, o));
    }
    expectSameGrid(legacy, expandSweep(bench::fig8Spec(o)).jobs);
}

TEST(SpecVsLegacy, Fig9)
{
    const RunOptions o = smallWindow();
    static std::deque<Program> programs;
    programs.clear();
    std::vector<SweepJob> legacy;
    for (const WorkloadSpec &w : workloadCatalog()) {
        programs.push_back(buildWorkload(w));
        for (FrontendVariant v :
             {FrontendVariant::Dcf, FrontendVariant::NoDcf,
              FrontendVariant::LElf, FrontendVariant::UElf})
            legacy.push_back(makeVariantJob(programs.back(), v, o));
    }
    expectSameGrid(legacy, expandSweep(bench::fig9Spec(o)).jobs);
}

TEST(SpecVsLegacy, AblationDcf)
{
    const RunOptions o = smallWindow();
    const SimConfig base = makeConfig(FrontendVariant::Dcf);
    std::vector<SimConfig> rows;
    rows.push_back(base);
    for (unsigned depth : {0u, 1u, 5u, 8u}) {
        SimConfig c = base;
        c.bp1ToFe = depth;
        rows.push_back(c);
    }
    {
        SimConfig c = base;
        c.btb.l0.entries = 1;
        c.btb.l0.assoc = 0;
        rows.push_back(c);
    }
    {
        SimConfig c = base;
        c.btb.l0.entries = 96;
        c.btb.l0.assoc = 0;
        rows.push_back(c);
    }
    {
        SimConfig c = base;
        c.maxInstPrefetch = 0;
        rows.push_back(c);
    }
    {
        SimConfig c = base;
        c.faqEntries = 4;
        rows.push_back(c);
    }

    static std::deque<Program> programs;
    programs.clear();
    std::vector<SweepJob> legacy;
    for (const char *name : {"641.leela", "srv1.subtest_1"}) {
        programs.push_back(buildWorkload(*findWorkload(name)));
        for (const SimConfig &cfg : rows) {
            SweepJob j;
            j.program = &programs.back();
            j.cfg = cfg;
            j.opts = o;
            legacy.push_back(j);
        }
    }
    expectSameGrid(legacy,
                   expandSweep(bench::ablationDcfSpec(o)).jobs);
}

TEST(SpecVsLegacy, AblationElf)
{
    const RunOptions o = smallWindow();
    const SimConfig base = makeConfig(FrontendVariant::UElf);
    std::vector<SimConfig> rows;
    rows.push_back(base);
    rows.push_back(makeConfig(FrontendVariant::Dcf));
    {
        SimConfig c = base;
        c.payloadPolicy = PayloadPolicy::RobHead;
        rows.push_back(c);
    }
    {
        SimConfig c = base;
        c.payloadPolicy = PayloadPolicy::Ideal;
        rows.push_back(c);
    }
    {
        SimConfig c = base;
        c.condElfRequireSaturation = false;
        rows.push_back(c);
    }
    {
        SimConfig c = base;
        c.coupledPreds.bimodal.entries = 8192;
        rows.push_back(c);
    }
    {
        SimConfig c = base;
        c.coupledPreds.bimodal.entries = 512;
        rows.push_back(c);
    }
    {
        SimConfig c = base;
        c.divergence.vecEntries = 16;
        c.divergence.targetEntries = 4;
        rows.push_back(c);
    }
    {
        SimConfig c = base;
        c.faqEntries = 8;
        rows.push_back(c);
    }
    {
        SimConfig c = base;
        c.faqEntries = 128;
        rows.push_back(c);
    }
    {
        SimConfig c = base;
        c.coupledPreds.condKind = CoupledCondKind::Gshare;
        rows.push_back(c);
    }
    {
        SimConfig c = base;
        c.decodeBtbFill = true;
        rows.push_back(c);
    }

    static Program p = buildWorkload(*findWorkload("641.leela"));
    std::vector<SweepJob> legacy;
    for (const SimConfig &cfg : rows) {
        SweepJob j;
        j.program = &p;
        j.cfg = cfg;
        j.opts = o;
        legacy.push_back(j);
    }
    expectSameGrid(legacy,
                   expandSweep(bench::ablationElfSpec(o)).jobs);
}

TEST(SpecVsLegacy, ThroughputStridedAndSampled)
{
    RunOptions o = smallWindow();
    const unsigned stride = 3;
    const bool quick = true;

    static std::deque<Program> programs;
    programs.clear();
    std::vector<SweepJob> legacy;
    unsigned wi = 0;
    for (const WorkloadSpec &w : workloadCatalog()) {
        if (wi++ % stride != 0)
            continue;
        programs.push_back(buildWorkload(w));
        for (FrontendVariant v :
             {FrontendVariant::NoDcf, FrontendVariant::Dcf,
              FrontendVariant::UElf})
            legacy.push_back(makeVariantJob(programs.back(), v, o));
    }
    RunOptions so;
    so.warmupInsts = 0;
    so.measureInsts = quick ? 2500000 : 10000000;
    so.samplePeriodInsts = 1000000;
    so.sampleLengthInsts = 5000;
    so.sampleWarmupInsts = 1000;
    for (const char *name : {"605.mcf", "srv2.subtest_3"}) {
        programs.push_back(buildWorkload(*findWorkload(name)));
        legacy.push_back(makeVariantJob(programs.back(),
                                        FrontendVariant::UElf, so));
    }
    expectSameGrid(
        legacy,
        expandSweep(bench::throughputSpec(o, stride, true, quick))
            .jobs);
}

TEST(SpecVsLegacy, ServerCapacity)
{
    const RunOptions o = smallWindow();
    static std::deque<Program> programs;
    programs.clear();
    std::vector<SweepJob> legacy;
    for (unsigned funcs : {64u, 256u, 768u, 1536u}) {
        CfgParams p;
        p.numFuncs = funcs;
        p.blocksPerFunc = 5;
        p.callBlockProb = 0.08;
        p.indirectCallFrac = 0.15;
        p.callSkew = 0.05;
        p.fracLoopBranches = 0.42;
        p.fracPatternBranches = 0.40;
        p.loopPeriodMin = 2;
        p.loopPeriodMax = 6;
        p.dataFootprint = 256 << 10;
        programs.push_back(generateCfg(p, 0x5e41, "server_sweep"));
        for (FrontendVariant v :
             {FrontendVariant::Dcf, FrontendVariant::NoDcf,
              FrontendVariant::LElf, FrontendVariant::UElf})
            legacy.push_back(makeVariantJob(programs.back(), v, o));
    }
    expectSameGrid(legacy,
                   expandSweep(bench::serverCapacitySpec(o)).jobs);
}

// ---------------------------------------------------------------------
// End to end: an expanded spec runs and exports like a legacy grid.
// ---------------------------------------------------------------------

TEST(SweepSpecRun, ExpandedSpecProducesIdenticalResultBytes)
{
    const SweepSpec spec = bench::fig3Spec(smallWindow());
    const ExpandedSweep ex = expandSweep(spec);

    SweepRunner a(1), b(2);
    a.setPolicy(spec.policy);
    b.setPolicy(spec.policy);
    const std::vector<RunResult> ra = a.run(ex.jobs);

    // Re-expand (fresh programs) and run on a different thread count:
    // the exported bytes must not change.
    const ExpandedSweep ex2 = expandSweep(spec);
    const std::vector<RunResult> rb = b.run(ex2.jobs);

    std::ostringstream ja, jb;
    writeResultsJson(ja, ra);
    writeResultsJson(jb, rb);
    EXPECT_EQ(ja.str(), jb.str());
}
