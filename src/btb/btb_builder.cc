#include "btb/btb_builder.hh"

#include <algorithm>

#include "common/logging.hh"

namespace elfsim {

void
BtbBuilder::saveState(Serializer &s) const
{
    // unordered_set iteration order is not stable across processes;
    // sort so identical builder states serialize to identical bytes.
    std::vector<Addr> sorted(takenBefore.begin(), takenBefore.end());
    std::sort(sorted.begin(), sorted.end());
    s.u64(sorted.size());
    for (Addr a : sorted)
        s.u64(a);
    s.u64(nextEstablishPC);
    s.u64(currentStart);
    s.u64(currentEnd);
    s.u64(establishCount);
    s.u64(amendCount);
}

void
BtbBuilder::loadState(Deserializer &d)
{
    const std::uint64_t n = d.u64();
    takenBefore.clear();
    takenBefore.reserve(std::size_t(n));
    for (std::uint64_t i = 0; i < n; ++i)
        takenBefore.insert(d.u64());
    nextEstablishPC = d.u64();
    currentStart = d.u64();
    currentEnd = d.u64();
    establishCount = d.u64();
    amendCount = d.u64();
}

BtbBuilder::BtbBuilder(const Program &prog, MultiBtb &btb)
    : prog(prog), btb(btb)
{
}

BtbEntry
BtbBuilder::buildEntry(Addr start_pc) const
{
    BtbEntry e;
    e.valid = true;
    e.startPC = start_pc;
    e.termination = BtbTermination::MaxInsts;

    unsigned slot = 0;
    Addr pc = start_pc;
    while (e.numInsts < btbMaxInsts) {
        const StaticInst *si = prog.instAt(pc);
        if (!si) {
            // Walked off the code image; treat as a max-length stop.
            break;
        }
        if (si->isBranchInst()) {
            if (isUnconditional(si->branch)) {
                // Unconditional branches always terminate the entry
                // and always occupy a slot. If no slot is free, the
                // entry ends before this instruction instead.
                if (slot >= btbMaxBranches) {
                    e.termination = BtbTermination::SlotPressure;
                    break;
                }
                e.slots[slot].valid = true;
                e.slots[slot].offset =
                    static_cast<std::uint8_t>(e.numInsts);
                e.slots[slot].kind = si->branch;
                e.slots[slot].target =
                    isDirect(si->branch) ? si->directTarget
                                         : invalidAddr;
                ++slot;
                ++e.numInsts;
                e.termination = BtbTermination::Unconditional;
                return e;
            }
            // Conditional: claims a slot only if observed taken.
            if (takenBefore.count(si->pc)) {
                if (slot >= btbMaxBranches) {
                    // A third tracked conditional would be needed.
                    e.termination = BtbTermination::SlotPressure;
                    break;
                }
                e.slots[slot].valid = true;
                e.slots[slot].offset =
                    static_cast<std::uint8_t>(e.numInsts);
                e.slots[slot].kind = si->branch;
                e.slots[slot].target = si->directTarget;
                ++slot;
            }
            // Never-observed-taken conditionals occupy no slot.
        }
        ++e.numInsts;
        pc += instBytes;
    }

    if (e.numInsts == 0) {
        // start_pc was unmapped: synthesize a max-length sequential
        // entry so the front-end keeps sequencing (wrong-path only).
        e.numInsts = btbMaxInsts;
    }
    return e;
}

void
BtbBuilder::establish(Addr start_pc)
{
    const BtbEntry e = buildEntry(start_pc);
    btb.insert(e);
    ++establishCount;
    currentStart = start_pc;
    currentEnd = e.fallthrough();
    nextEstablishPC = currentEnd;
}

void
BtbBuilder::retireSequentialRange(Addr start_pc, InstCount n)
{
    if (n == 0)
        return;
    // First instruction ever: scalar retire() establishes at si.pc.
    if (nextEstablishPC == invalidAddr)
        establish(start_pc);
    // Scalar retire() establishes whenever si.pc == nextEstablishPC.
    // The visited PCs are exactly start_pc + k*instBytes for k < n,
    // and each establish() moves nextEstablishPC strictly forward
    // (every entry covers >= 1 instruction), so walking the
    // establishment chain in ascending order reproduces the scalar
    // visit order.
    const Addr end = start_pc + instsToBytes(n);
    while (nextEstablishPC >= start_pc && nextEstablishPC < end &&
           (nextEstablishPC - start_pc) % instBytes == 0)
        establish(nextEstablishPC);
}

void
BtbBuilder::retire(const StaticInst &si, bool taken, Addr next_pc)
{
    // Start of a fresh region: first instruction ever, the target of
    // the previous taken branch, or the fall-through of the previous
    // entry.
    if (nextEstablishPC == invalidAddr || si.pc == nextEstablishPC)
        establish(si.pc);

    if (si.branch == BranchKind::CondDirect && taken &&
        !takenBefore.count(si.pc)) {
        // A never-taken conditional just turned taken: amend every
        // established entry that covers it (rebuilding shortens/
        // splits them). Candidate entry starts lie within the
        // 16-instruction reach before the branch.
        takenBefore.insert(si.pc);
        for (unsigned back = 0; back < btbMaxInsts; ++back) {
            const Addr start = si.pc - instsToBytes(back);
            if (start < prog.codeBase())
                break;
            if (!btb.present(start))
                continue;
            const BtbEntry rebuilt = buildEntry(start);
            btb.insert(rebuilt);
            ++amendCount;
            if (start == currentStart)
                currentEnd = rebuilt.fallthrough();
        }
    }

    if (si.branch == BranchKind::CondDirect &&
        takenBefore.count(si.pc)) {
        // A tracked conditional is sometimes predicted taken; when
        // that prediction is wrong the front-end restarts at the
        // fall-through — a mid-entry address. Make sure an entry
        // exists there, or every such flush degenerates into
        // sequential guessing (and drops history bits).
        const Addr ft = si.pc + instBytes;
        if (!btb.present(ft)) {
            btb.insert(buildEntry(ft));
            ++establishCount;
        }
        // Symmetrically, the taken target needs one for the
        // opposite misprediction.
        if (!btb.present(si.directTarget)) {
            btb.insert(buildEntry(si.directTarget));
            ++establishCount;
        }
    }

    if (si.isBranchInst() && taken) {
        // The stream jumps: the next region starts at the target.
        nextEstablishPC = next_pc;
        currentStart = invalidAddr;
        currentEnd = invalidAddr;
    }
}

} // namespace elfsim
