/**
 * @file
 * Minimal HTTP/1.1 framing over loopback TCP sockets — just enough
 * protocol for the sweep service (service/daemon.hh) and its tests:
 * request-line + headers + Content-Length bodies on the way in,
 * fixed or chunked (Transfer-Encoding: chunked) responses on the way
 * out, one request per connection (the server always answers
 * `Connection: close`).
 *
 * Writes use MSG_NOSIGNAL, so a client that disconnects mid-stream
 * surfaces as a failed write (EPIPE/ECONNRESET) instead of killing
 * the process — the daemon turns that into a cooperative sweep
 * cancellation.
 *
 * The client half (connectTcp/httpFetch) exists for the multi-client
 * load generator and the service tests; it understands both framed
 * and chunked response bodies.
 */

#ifndef ELFSIM_SERVICE_HTTP_HH
#define ELFSIM_SERVICE_HTTP_HH

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace elfsim {
namespace service {

/** One parsed request (headers lower-cased). */
struct HttpRequest
{
    std::string method;
    std::string path;
    std::map<std::string, std::string> headers;
    std::string body;
};

/** One parsed response (client side; body de-chunked). */
struct HttpResponse
{
    int status = 0;
    std::map<std::string, std::string> headers;
    std::string body;
};

/** Bind + listen on host:port (port 0 = ephemeral); returns the
 *  listening fd. Throws IoError on failure. */
int listenTcp(const std::string &host, std::uint16_t port);

/** The port a listening socket actually bound (ephemeral binds). */
std::uint16_t boundPort(int fd);

/** Connect to host:port; returns the fd. Throws IoError. */
int connectTcp(const std::string &host, std::uint16_t port);

/** Write all of @a data (MSG_NOSIGNAL); false on any socket error. */
bool writeAll(int fd, std::string_view data);

/**
 * Read one request off @a fd. Returns false with @a err filled on
 * malformed framing or a closed connection; over-long requests
 * (> 16 MiB body) are rejected rather than buffered.
 */
bool readHttpRequest(int fd, HttpRequest &out, std::string &err);

/** Write a complete fixed-length response (Connection: close). */
bool writeHttpResponse(int fd, int status, std::string_view reason,
                       std::string_view contentType,
                       std::string_view body);

/**
 * Incremental chunked response: header() once, then any number of
 * write()s (each one chunk), then finish() (the terminating
 * zero-chunk). After the first failed write every later call is a
 * cheap no-op and failed() reports true — the caller polls it to
 * notice a client disconnect.
 */
class ChunkedResponse
{
  public:
    explicit ChunkedResponse(int fd) : fd(fd) {}

    bool header(int status, std::string_view reason,
                std::string_view contentType);
    bool write(std::string_view data);
    bool finish();

    bool failed() const { return bad; }

  private:
    int fd;
    bool bad = false;
};

/**
 * Client convenience: one connect + request + response + close round
 * trip. Throws IoError when the server is unreachable or the
 * response is unparseable. @a headers adds extra request headers
 * (artifact uploads carry their metadata this way).
 */
HttpResponse httpFetch(const std::string &host, std::uint16_t port,
                       const std::string &method,
                       const std::string &path,
                       std::string_view body = {},
                       const std::map<std::string, std::string>
                           &headers = {});

/** Read + parse one response from an already-connected socket (the
 *  multi-request client path). Throws IoError on malformed data. */
HttpResponse readHttpResponse(int fd);

/**
 * Read + parse only the status line and headers of a response,
 * leaving the body on the socket — the streaming-consumer path (the
 * distributed coordinator reads a shard's chunked JSONL body line by
 * line as cells complete). @a rest receives any body bytes already
 * buffered past the header block. Returns false with @a err filled
 * on a closed connection or malformed head.
 */
bool readHttpResponseHead(int fd, int &status,
                          std::map<std::string, std::string> &headers,
                          std::string &rest, std::string &err);

} // namespace service
} // namespace elfsim

#endif // ELFSIM_SERVICE_HTTP_HH
