#include <gtest/gtest.h>

#include <sstream>

#include "common/stats.hh"

using namespace elfsim::stats;

TEST(Stats, CounterAccumulates)
{
    StatGroup g("test");
    Counter &c = g.addCounter("events", "event count");
    ++c;
    c += 5;
    EXPECT_EQ(c.raw(), 6u);
    EXPECT_DOUBLE_EQ(c.value(), 6.0);
}

TEST(Stats, DistributionMoments)
{
    StatGroup g("test");
    Distribution &d = g.addDistribution("lat", "latency");
    d.sample(1);
    d.sample(3);
    d.sample(8);
    EXPECT_EQ(d.samples(), 3u);
    EXPECT_DOUBLE_EQ(d.mean(), 4.0);
    EXPECT_DOUBLE_EQ(d.minimum(), 1.0);
    EXPECT_DOUBLE_EQ(d.maximum(), 8.0);
    EXPECT_DOUBLE_EQ(d.total(), 12.0);
}

TEST(Stats, FormulaTracksInputs)
{
    StatGroup g("test");
    Counter &n = g.addCounter("n", "numerator");
    Counter &d = g.addCounter("d", "denominator");
    Formula &f = g.addFormula("ratio", "n/d", [&] {
        return d.raw() ? n.value() / d.value() : 0.0;
    });
    EXPECT_DOUBLE_EQ(f.value(), 0.0);
    n += 10;
    d += 4;
    EXPECT_DOUBLE_EQ(f.value(), 2.5);
}

TEST(Stats, ReferencesStableAcrossGrowth)
{
    StatGroup g("test");
    Counter &first = g.addCounter("c0", "first");
    first += 7;
    // Force the pool to grow well past typical small-buffer sizes.
    for (int i = 1; i < 200; ++i)
        g.addCounter("c" + std::to_string(i), "filler");
    EXPECT_EQ(first.raw(), 7u);
    ++first;
    EXPECT_EQ(g.find("c0")->value(), 8.0);
}

TEST(Stats, ResetAll)
{
    StatGroup g("test");
    Counter &c = g.addCounter("c", "counter");
    Distribution &d = g.addDistribution("d", "dist");
    c += 3;
    d.sample(5);
    g.resetAll();
    EXPECT_EQ(c.raw(), 0u);
    EXPECT_EQ(d.samples(), 0u);
}

TEST(Stats, DumpContainsNamesAndValues)
{
    StatGroup g("grp");
    Counter &c = g.addCounter("hits", "hit count");
    c += 42;
    std::ostringstream os;
    g.dump(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("grp.hits"), std::string::npos);
    EXPECT_NE(out.find("42"), std::string::npos);
    EXPECT_NE(out.find("hit count"), std::string::npos);
}

TEST(Stats, FindMissingReturnsNull)
{
    StatGroup g("grp");
    EXPECT_EQ(g.find("nope"), nullptr);
}
