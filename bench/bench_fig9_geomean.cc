/**
 * @file
 * Figure 9 equivalent: geometric-mean speedup of NoDCF, L-ELF and
 * U-ELF relative to DCF, per benchmark suite and overall.
 */

#include <map>
#include <vector>

#include "bench_specs.hh"
#include "bench_util.hh"

using namespace elfsim;

int
main(int argc, char **argv)
{
    const bench::Options opt = bench::parseOptions(argc, argv);
    bench::banner(
        "Figure 9 — Speedup (geomean) of NoDCF / L-ELF / U-ELF "
        "relative to DCF",
        "Per suite and overall; paper: L-ELF +0.7% geomean, U-ELF "
        "+1.2%, NoDCF well below 1.0");

    const SweepSpec spec = bench::finalizeSpec(
        bench::fig9Spec(opt.runOptions()), opt, argv[0]);
    const ExpandedSweep ex = expandSweep(spec);

    SweepRunner runner(bench::specJobs(opt, spec));
    bench::armRunner(runner, spec);
    const std::vector<RunResult> res = runner.run(ex.jobs);

    if (!opt.specPath.empty()) {
        bench::printResultsTable(res, ex.labels);
        bench::exportResults(opt, runner);
        bench::printSweepTiming(runner);
        return bench::exitCode(runner);
    }

    std::map<std::string, std::vector<double>> nod, lelf, uelf;
    std::vector<double> nodAll, lAll, uAll;

    std::size_t row = 0;
    for (const WorkloadSpec &w : workloadCatalog()) {
        const RunResult &dcf = res[row + 0];
        const RunResult &n = res[row + 1];
        const RunResult &l = res[row + 2];
        const RunResult &u = res[row + 3];
        row += 4;
        if (!dcf.ok() || !n.ok() || !l.ok() || !u.ok()) {
            // A failed cell has no IPC; keep it out of the geomeans
            // rather than poisoning the whole figure.
            std::printf("  %-18s (skipped: cell did not complete)\n",
                        w.name.c_str());
            continue;
        }
        const double rn = n.ipc / dcf.ipc;
        const double rl = l.ipc / dcf.ipc;
        const double ru = u.ipc / dcf.ipc;
        nod[w.suite].push_back(rn);
        lelf[w.suite].push_back(rl);
        uelf[w.suite].push_back(ru);
        nodAll.push_back(rn);
        lAll.push_back(rl);
        uAll.push_back(ru);
        std::printf("  %-18s NoDCF %.3f  L-ELF %.3f  U-ELF %.3f\n",
                    w.name.c_str(), rn, rl, ru);
        std::fflush(stdout);
    }

    std::printf("\n%-12s %8s %8s %8s\n", "suite", "NoDCF", "L-ELF",
                "U-ELF");
    for (const std::string &s : catalogSuites()) {
        std::printf("%-12s %8.3f %8.3f %8.3f\n", s.c_str(),
                    geomean(nod[s]), geomean(lelf[s]),
                    geomean(uelf[s]));
    }
    std::printf("%-12s %8.3f %8.3f %8.3f\n", "Geomean",
                geomean(nodAll), geomean(lAll), geomean(uAll));
    bench::exportResults(opt, runner);
    bench::printSweepTiming(runner);
    return bench::exitCode(runner);
}
