#include "bpred/bimodal.hh"

namespace elfsim {

Bimodal::Bimodal(const BimodalParams &params)
    : params(params),
      table(params.entries, SatCounter(params.counterBits, 0))
{
    reset();
}

void
Bimodal::reset()
{
    for (SatCounter &c : table) {
        c = SatCounter(params.counterBits, 0);
        c.resetWeak();
    }
}

} // namespace elfsim
