/**
 * @file
 * Parallel sweep engine: runs a grid of independent (workload,
 * variant) simulation jobs on a work-stealing thread pool and merges
 * the results back in submission order, so parallel output is
 * bit-identical to a serial run of the same grid.
 *
 * Every figure of the paper is such a sweep; the per-figure bench
 * harnesses build a grid, hand it to a SweepRunner, and format the
 * merged results. Thread count comes from (in priority order) the
 * explicit constructor argument / `--jobs N`, the `ELFSIM_JOBS`
 * environment variable, then hardware concurrency.
 *
 * Determinism: each Core owns all of its state (the audit found no
 * global mutable simulator state; predictor allocation RNGs are
 * per-instance), and a job's optional RNG seed is derived from its
 * submission index — never from thread identity — so the results of a
 * grid do not depend on the number of worker threads.
 *
 * Fault tolerance: under the default SweepPolicy a job that panics,
 * throws, hangs or overruns its deadline degrades to a failed cell
 * (RunResult::status != Ok, metrics zeroed, error recorded) and the
 * rest of the grid completes. Transient errors retry up to
 * SweepPolicy::maxRetries extra attempts. A JSONL manifest journals
 * each finished cell as it completes, so a killed sweep resumes with
 * `resume = true` re-running only the unfinished cells — merged
 * output is byte-identical to an uninterrupted run.
 */

#ifndef ELFSIM_SIM_SWEEP_HH
#define ELFSIM_SIM_SWEEP_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "sim/runner.hh"
#include "workload/checkpoint_store.hh"
#include "workload/trace_cache.hh"

namespace elfsim {

/** One cell of a sweep grid. The program must outlive the sweep. */
struct SweepJob
{
    const Program *program = nullptr;
    SimConfig cfg;
    RunOptions opts;
};

/** Convenience: grid cell for a named variant of a program. */
SweepJob makeVariantJob(const Program &prog, FrontendVariant variant,
                        const RunOptions &opts = {});

/**
 * Stable identity of grid cell @a i under @a base_seed — workload,
 * variant, window sizes, sampling schedule and the effective RNG
 * seed. This is the free-function form of SweepRunner::jobKey, shared
 * with the distributed coordinator (dist/coordinator.hh), which must
 * compute the exact same keys without constructing a runner.
 */
std::string sweepJobKey(const SweepJob &job, std::size_t i,
                        std::uint64_t base_seed);

/** Wall-clock accounting of the last sweep (speedup reporting). */
struct SweepTiming
{
    unsigned jobs = 0;
    unsigned threads = 0;
    double wallSeconds = 0;     ///< whole-sweep wall-clock
    double serialSeconds = 0;   ///< sum of per-job wall-clocks
    std::uint64_t simCycles = 0; ///< aggregate measured cycles
    std::uint64_t simInsts = 0;  ///< aggregate measured instructions

    double
    cyclesPerSecond() const
    {
        return wallSeconds > 0 ? double(simCycles) / wallSeconds : 0;
    }

    /** Realized parallel speedup vs. running the grid serially. */
    double
    speedup() const
    {
        return wallSeconds > 0 ? serialSeconds / wallSeconds : 0;
    }
};

/** Fault-tolerance policy of a sweep. */
struct SweepPolicy
{
    /**
     * Catch per-job errors (including recoverable panics) and mark
     * the cell failed instead of aborting the sweep. When false, the
     * legacy strict behavior: the first error escapes run() — or
     * aborts the process for a panic.
     */
    bool keepGoing = true;

    /** Per-job wall-clock limit in seconds; 0 disables. An overrun
     *  job is cancelled cooperatively and its cell marked timeout. */
    double deadlineSeconds = 0;

    /** Watchdog stall limit: cancel a job whose committed-instruction
     *  heartbeat has not advanced for this many seconds; 0 disables.
     *  Catches hangs long before a generous deadline would. */
    double stallSeconds = 0;

    /** Extra attempts for cells failing with a TransientError. */
    unsigned maxRetries = 0;

    /** JSONL journal of completed cells (crash-safe resume); empty
     *  disables journaling. */
    std::string manifestPath;

    /** Reuse ok cells recorded in manifestPath (index and jobKey must
     *  both match) and re-run only the rest. New completions append
     *  to the manifest. */
    bool resume = false;

    /**
     * Per-sweep cooperative cancellation (the sweep service's client-
     * disconnect path): when set and raised, the watchdog monitor
     * cancels every in-flight job and queued jobs degrade to
     * cancelled cells — exactly the process-wide interrupt behavior,
     * but scoped to this one sweep instead of the whole process.
     * Null (the default) disables the check.
     */
    std::shared_ptr<std::atomic<bool>> cancelFlag;

    bool
    watchdogEnabled() const
    {
        return deadlineSeconds > 0 || stallSeconds > 0;
    }

    /** Has this sweep's private cancel flag been raised? */
    bool
    cancelRequested() const
    {
        return cancelFlag &&
               cancelFlag->load(std::memory_order_acquire);
    }
};

/** Thread-pooled grid runner with deterministic result merging. */
class SweepRunner
{
  public:
    /** @a threads = 0 resolves via ELFSIM_JOBS, then hardware. */
    explicit SweepRunner(unsigned threads = 0);

    /**
     * When non-zero, job i runs with SimConfig::rngSeed =
     * mix64(seed, i + 1): deterministic per submission slot, so
     * results stay independent of the thread count. 0 (default)
     * leaves each job's config untouched — output then matches the
     * legacy serial harnesses bit for bit.
     */
    void setBaseSeed(std::uint64_t seed) { baseSeed = seed; }

    /** Replace the fault-tolerance policy (defaults: keep going, no
     *  watchdog, no retries, no manifest). */
    void setPolicy(SweepPolicy p) { pol = std::move(p); }

    const SweepPolicy &policy() const { return pol; }

    /**
     * Observer invoked once per finished cell — (submission index,
     * merged result) — as cells complete, including cells adopted
     * from a resume manifest. Calls are serialized (one at a time,
     * under an internal mutex) but arrive in completion order, not
     * submission order; the sweep service reorders them into its
     * incremental result stream. An empty function (default)
     * disables the hook.
     */
    void
    setCellObserver(
        std::function<void(std::size_t, const RunResult &)> fn)
    {
        cellObserver = std::move(fn);
    }

    /**
     * Run every job and return results indexed by submission order.
     * With 1 thread (or a 1-job grid) the jobs run inline on the
     * calling thread — the serial reference path.
     *
     * Before the per-job timers start, each distinct (program
     * content, instruction budget) pair in the grid has its compiled
     * trace acquired once from the process-wide TraceCache; every
     * cell of a workload then shares the same immutable buffer, and
     * compilation cost never lands in perJobSeconds(). A disabled
     * TraceCache makes this a no-op (fully lazy cells).
     */
    std::vector<RunResult> run(const std::vector<SweepJob> &grid);

    /**
     * Run only the cells of @a grid whose submission indices appear
     * in @a only, preserving every cell's *global* index: seeds,
     * jobKeys and per-cell results are exactly those the full-grid
     * run would produce, so results from disjoint subsets merge
     * byte-identically into a full-grid result set. Unselected cells
     * keep default-constructed results and never run, journal, or
     * notify the observer. This is the distributed worker's
     * execution path (a shard is a subset of a fleet-wide grid).
     * Out-of-range indices in @a only are ignored.
     */
    std::vector<RunResult> run(const std::vector<SweepJob> &grid,
                               const std::vector<std::size_t> &only);

    unsigned threadCount() const { return threads; }

    /** Timing of the most recent run(). */
    const SweepTiming &timing() const { return lastTiming; }

    /** Trace-compilation activity during the most recent run()
     *  (TraceCache counter deltas captured across run()). */
    const TraceStats &traceStats() const { return lastTraceStats; }

    /** Checkpoint-store activity during the most recent run()
     *  (CheckpointStore counter deltas captured across run()). */
    const CkptStats &ckptStats() const { return lastCkptStats; }

    /** Functional-warming work split accumulated by the last run(). */
    const WarmStats &warmStats() const { return lastWarmStats; }

    /** Results of the most recent run(), in submission order. */
    const std::vector<RunResult> &results() const { return lastResults; }

    /** Cells of the most recent run() that did not complete ok. */
    std::size_t failedCells() const;

    /**
     * Stable identity of grid cell @a i — workload, variant, window
     * sizes and the effective RNG seed. A manifest entry is only
     * reused on resume when both its index and its key match, so a
     * stale manifest from a different grid never contaminates
     * results.
     */
    std::string jobKey(const SweepJob &job, std::size_t i) const;

    /**
     * Install SIGINT/SIGTERM handlers that raise a process-wide
     * interrupt flag. A running sweep notices (watchdog monitor
     * cancels in-flight jobs; queued jobs degrade to cancelled cells)
     * and run() returns with partial results, which the bench
     * harnesses then flush — so a Ctrl-C mid-sweep still exports
     * everything finished so far and the manifest stays resumable.
     */
    static void installSignalHandlers();

    /** Has a SIGINT/SIGTERM arrived since clearInterrupt()? */
    static bool interruptRequested();

    /** Reset the interrupt flag (tests; start of a new sweep). */
    static void clearInterrupt();

    /**
     * Per-job wall-clock seconds of the most recent run(), in
     * submission order (parallel to results()). This is what the
     * throughput benchmark divides simulated instructions by to get
     * per-job simulated MIPS.
     */
    const std::vector<double> &perJobSeconds() const { return jobSeconds; }

    /**
     * Write the last run's results + timing as an elfsim-results-v2
     * JSON document (sim/export.hh). The "results" portion depends
     * only on the simulated grid, never on thread count; "timing" is
     * the one wall-clock-dependent block.
     */
    void writeJson(const std::string &path) const;

    /**
     * Write the last run's results as a flat CSV table. If any
     * result carries an interval timeline, the per-interval rows go
     * to a sibling file with ".timeline.csv" substituted for the
     * ".csv" suffix (appended if the path has none).
     */
    void writeCsv(const std::string &path) const;

    /**
     * Dump the per-sweep timing summary (jobs, threads, wall-clock,
     * aggregate simulated cycles/sec, realized speedup) through the
     * stats machinery.
     */
    void printTimingSummary(std::ostream &os) const;

    /** Resolve a thread count: @a requested, else $ELFSIM_JOBS, else
     *  hardware concurrency; never less than 1. */
    static unsigned resolveJobs(unsigned requested = 0);

  private:
    std::vector<RunResult> runSubset(const std::vector<SweepJob> &grid,
                                     const std::vector<std::size_t> *only);

    unsigned threads;
    std::uint64_t baseSeed = 0;
    SweepPolicy pol;
    SweepTiming lastTiming;
    TraceStats lastTraceStats;  ///< TraceCache activity, last run
    CkptStats lastCkptStats;    ///< CheckpointStore activity, last run
    WarmStats lastWarmStats;    ///< warming kernel activity, last run
    std::vector<RunResult> lastResults; ///< merged results, last run
    std::vector<double> jobSeconds; ///< per-job wall-clocks, last run
    std::function<void(std::size_t, const RunResult &)> cellObserver;
};

} // namespace elfsim

#endif // ELFSIM_SIM_SWEEP_HH
