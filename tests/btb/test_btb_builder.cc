#include <gtest/gtest.h>

#include "btb/btb_builder.hh"
#include "workload/builders.hh"
#include "workload/oracle_stream.hh"
#include "workload/program_builder.hh"

using namespace elfsim;

namespace {

/** Retire n architectural instructions through the builder. */
void
retireN(BtbBuilder &b, OracleStream &os, SeqNum n, SeqNum start = 1)
{
    for (SeqNum i = start; i < start + n; ++i) {
        const OracleInst &oi = os.at(i);
        b.retire(*oi.si, oi.taken, oi.nextPC);
        os.retireUpTo(i);
    }
}

} // namespace

TEST(BtbBuilder, EntryEndsOnUnconditional)
{
    // Blocks of 5 insts (4 filler + jump): entries should track 5
    // instructions and terminate with the unconditional in a slot.
    Program p = microTakenChain(4, 4);
    MultiBtb btb;
    BtbBuilder b(p, btb);
    OracleStream os(p);
    retireN(b, os, 40);

    const BtbLookupResult r = btb.lookup(p.entryPC());
    ASSERT_TRUE(r.hit);
    EXPECT_EQ(r.entry.numInsts, 5);
    EXPECT_EQ(r.entry.termination, BtbTermination::Unconditional);
    ASSERT_NE(r.entry.terminatingUncond(), nullptr);
    EXPECT_EQ(r.entry.terminatingUncond()->offset, 4);
}

TEST(BtbBuilder, LongSequentialSplitsAt16)
{
    // One 40-instruction straight block ending in a loop branch:
    // entries of 16/16/9 instructions.
    Program p = microSequentialLoop(40, 8);
    MultiBtb btb;
    BtbBuilder b(p, btb);
    OracleStream os(p);
    retireN(b, os, 200);

    const BtbLookupResult r0 = btb.lookup(p.entryPC());
    ASSERT_TRUE(r0.hit);
    EXPECT_EQ(r0.entry.numInsts, 16);
    EXPECT_EQ(r0.entry.termination, BtbTermination::MaxInsts);

    const BtbLookupResult r1 = btb.lookup(r0.entry.fallthrough());
    ASSERT_TRUE(r1.hit);
    EXPECT_EQ(r1.entry.numInsts, 16);

    const BtbLookupResult r2 = btb.lookup(r1.entry.fallthrough());
    ASSERT_TRUE(r2.hit);
    // 40 filler + loop cond + exit-path jump = 42 insts: the third
    // entry covers 8 filler + the (observed-taken) conditional + the
    // unconditional jump that terminates it.
    EXPECT_EQ(r2.entry.numInsts, 10);
    EXPECT_EQ(r2.entry.termination, BtbTermination::Unconditional);
    EXPECT_EQ(r2.entry.numSlots(), 2u);
}

TEST(BtbBuilder, NeverTakenCondClaimsNoSlot)
{
    // A conditional that is never taken must not occupy a slot and
    // must not terminate the entry.
    ProgramBuilder pb;
    pb.beginBlock();
    pb.addFiller(3);
    CondSpec never;
    never.kind = CondKind::LoopPeriod;
    never.period = 1; // never taken
    pb.endCond(never, 0);
    pb.beginBlock();
    pb.addFiller(2);
    pb.endJump(0);
    Program p = pb.finalize("t");

    MultiBtb btb;
    BtbBuilder b(p, btb);
    OracleStream os(p);
    retireN(b, os, 30);

    const BtbLookupResult r = btb.lookup(p.entryPC());
    ASSERT_TRUE(r.hit);
    // Entry covers filler+cond+filler+jump = 7 insts, with only the
    // jump in a slot.
    EXPECT_EQ(r.entry.numInsts, 7);
    EXPECT_EQ(r.entry.numSlots(), 1u);
    EXPECT_EQ(r.entry.slots[0].kind, BranchKind::UncondDirect);
}

TEST(BtbBuilder, AmendmentShortensEntryWhenCondTurnsTaken)
{
    // A conditional taken only every 8th time: initially no slot;
    // once taken, the rebuilt entry tracks it.
    ProgramBuilder pb;
    pb.beginBlock();
    pb.addFiller(3);
    CondSpec c;
    c.kind = CondKind::LoopPeriod;
    c.period = 1; // never taken...
    pb.endCond(c, 1);
    pb.beginBlock();
    pb.addFiller(2);
    pb.endJump(0);
    Program p = pb.finalize("t");

    // Manually drive the builder: the conditional retires not-taken a
    // few times, then taken once.
    MultiBtb btb;
    BtbBuilder b(p, btb);
    const StaticInst *cond = p.instAt(p.entryPC() + instsToBytes(3));
    ASSERT_NE(cond, nullptr);
    ASSERT_EQ(cond->branch, BranchKind::CondDirect);

    OracleStream os(p);
    retireN(b, os, 14); // two loop iterations, cond never taken
    EXPECT_EQ(btb.lookup(p.entryPC()).entry.numSlots(), 1u);

    // Now force the amendment path directly.
    b.retire(*p.instAt(p.entryPC()), false, p.entryPC() + 4);
    b.retire(*cond, true, cond->directTarget);
    EXPECT_GE(b.amendments(), 1u);
    EXPECT_TRUE(b.observedTaken(cond->pc));

    const BtbLookupResult r = btb.lookup(p.entryPC());
    ASSERT_TRUE(r.hit);
    EXPECT_EQ(r.entry.numSlots(), 2u); // cond now tracked + jump
}

TEST(BtbBuilder, ThirdTakenConditionalEndsEntry)
{
    // Three frequently-taken conditionals in a 10-inst straight run:
    // the entry must end before the third (slot pressure).
    ProgramBuilder pb;
    const auto b0 = pb.beginBlock();
    pb.addFiller(1);
    CondSpec half;
    half.kind = CondKind::Pattern;
    half.period = 2;
    half.seed = 3;
    pb.endCond(half, 1);
    pb.beginBlock();
    pb.addFiller(1);
    pb.endCond(half, 2);
    pb.beginBlock();
    pb.addFiller(1);
    pb.endCond(half, 3);
    pb.beginBlock();
    pb.addFiller(1);
    pb.endJump(b0);
    Program p = pb.finalize("t");

    MultiBtb btb;
    BtbBuilder b(p, btb);
    // Mark all three conditionals observed-taken via direct retires.
    const StaticInst *c1 = &p.instructions()[1];
    const StaticInst *c2 = &p.instructions()[3];
    const StaticInst *c3 = &p.instructions()[5];
    b.retire(p.instructions()[0], false, c1->pc);
    b.retire(*c1, true, c1->directTarget);
    b.retire(p.instructions()[2], false, c2->pc);
    b.retire(*c2, true, c2->directTarget);
    b.retire(p.instructions()[4], false, c3->pc);
    b.retire(*c3, true, c3->directTarget);

    const BtbEntry e = b.buildEntry(p.entryPC());
    EXPECT_EQ(e.termination, BtbTermination::SlotPressure);
    // Covers insts 0..4 (the third tracked cond at offset 5 is out).
    EXPECT_EQ(e.numInsts, 5);
    EXPECT_EQ(e.numSlots(), 2u);
}

TEST(BtbBuilder, EstablishmentsFollowCommitStream)
{
    Program p = microTakenChain(8, 6);
    MultiBtb btb;
    BtbBuilder b(p, btb);
    OracleStream os(p);
    retireN(b, os, 7 * 8 * 3); // three laps around the ring
    // Every block start should now be established.
    for (const BlockInfo &blk : p.blocks()) {
        const Addr start =
            p.codeBase() + instsToBytes(blk.firstInst);
        EXPECT_TRUE(btb.lookup(start).hit) << std::hex << start;
    }
}
