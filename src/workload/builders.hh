/**
 * @file
 * Program generators: a parameterized random control-flow-graph
 * generator used by the workload catalog, and small directed
 * micro-programs used by unit tests and the timing microbenchmarks
 * (Figures 2 and 3).
 */

#ifndef ELFSIM_WORKLOAD_BUILDERS_HH
#define ELFSIM_WORKLOAD_BUILDERS_HH

#include <cstdint>
#include <string>

#include "workload/program.hh"

namespace elfsim {

/**
 * Knobs of the random CFG generator. Defaults give a small, fairly
 * predictable integer-code-like program.
 */
struct CfgParams
{
    // --- code shape -----------------------------------------------------
    unsigned numFuncs = 16;          ///< functions in the program
    unsigned blocksPerFunc = 8;      ///< basic blocks per function
    unsigned instsPerBlockMin = 4;   ///< body length lower bound
    unsigned instsPerBlockMax = 12;  ///< body length upper bound

    // --- conditional branch behaviour ------------------------------------
    double fracLoopBranches = 0.4;   ///< LoopPeriod conditionals
    double fracPatternBranches = 0.4;///< Pattern conditionals
    /// remainder are TakenProb (data-dependent, hard to predict)
    double randomTakenProb = 0.5;    ///< bias of TakenProb branches
    unsigned loopPeriodMin = 4;
    unsigned loopPeriodMax = 64;
    unsigned patternLenMin = 4;
    unsigned patternLenMax = 32;
    double patternBias = 0.75;       ///< taken fraction of patterns
    double backEdgeProb = 0.35;      ///< conditional targets earlier block

    // --- calls ------------------------------------------------------------
    double callBlockProb = 0.25;     ///< block ends in a call
    double indirectCallFrac = 0.1;   ///< of calls, fraction indirect
    unsigned indirectFanout = 4;     ///< candidate targets per indirect
    double callSkew = 0.5;           ///< 0 = uniform callees, 1 = very hot
    double recursionFrac = 0.0;      ///< fraction of recursive functions
    unsigned recursionDepthPeriod = 8; ///< mean recursion depth

    // --- memory ------------------------------------------------------------
    double loadFrac = 0.20;          ///< per body instruction
    double storeFrac = 0.10;
    std::uint64_t dataFootprint = 1ull << 20; ///< bytes
    double chaseFrac = 0.0;          ///< of loads, pointer-chasing fraction
    double streamFrac = 0.7;         ///< of loads, striding fraction

    // --- non-memory instruction mix ----------------------------------------
    double fpFrac = 0.0;
    double mulFrac = 0.05;
    double divFrac = 0.005;

    /** Probability a body instruction reads the previous writer's
     *  destination (controls ILP: higher = chainier = lower IPC). */
    double depChainFrac = 0.35;
};

/** Generate a random CFG program from @a params with @a seed. */
Program generateCfg(const CfgParams &params, std::uint64_t seed,
                    std::string name);

// --- Directed micro-programs -------------------------------------------

/**
 * A single long block of @a body_insts ALU ops ending in a loop-back
 * conditional with the given period (mostly sequential code).
 */
Program microSequentialLoop(unsigned body_insts, unsigned period);

/**
 * A ring of @a n_blocks blocks of @a block_len body instructions, each
 * ending in an unconditional jump to the next: every block ends in a
 * taken branch (exercises taken-branch bubbles / FAQ queueing).
 */
Program microTakenChain(unsigned n_blocks, unsigned block_len);

/**
 * A loop whose body contains a data-dependent conditional with taken
 * probability @a taken_prob (drives branch mispredictions).
 */
Program microRandomBranchLoop(unsigned block_len, double taken_prob);

/**
 * Self-recursive function with mean depth @a depth, called from an
 * infinite loop (drives RAS usage; RET-ELF's favourite shape).
 */
Program microRecursion(unsigned depth, unsigned leaf_len);

/**
 * A loop around an indirect jump over @a fanout equal-sized targets
 * selected per @a kind.
 */
Program microIndirect(unsigned fanout, IndirectKind kind,
                      unsigned block_len);

/**
 * A giant ring of jump-terminated blocks whose static footprint
 * greatly exceeds BTB/I-cache reach (drives BTB and I-cache misses;
 * the server-1 shape).
 */
Program microBtbMissChain(unsigned n_blocks, unsigned block_len);

/**
 * A loop of back-to-back memory instructions over @a footprint bytes
 * (drives the D-side; used to check wrong-path pollution effects).
 */
Program microMemoryStream(std::uint64_t footprint, MemKind kind,
                          unsigned block_len);

} // namespace elfsim

#endif // ELFSIM_WORKLOAD_BUILDERS_HH
