/**
 * @file
 * Compiled architectural-trace artifact.
 *
 * A CompiledTrace materializes the first N instructions of a
 * workload's dynamic stream — the exact sequence OracleStream would
 * generate lazily — into a flat, index-addressable structure-of-arrays
 * buffer: static-instruction index, taken bitset, next PC, and bound
 * memory address. Building it costs one pass of the shared OracleGen
 * kernel; afterwards every simulation cell of a sweep (and every bench
 * in a campaign, via the on-disk TraceCache) reads the same immutable
 * buffer instead of re-evaluating conditional-outcome specs, indirect
 * target specs, and memory hash chains per instruction per cell.
 *
 * The trace also records the generator state *after* instruction N
 * (PC, call stack, spec instance counters) so a consumer that runs
 * past the compiled prefix resumes lazy generation seamlessly — the
 * compiled and lazy streams are indistinguishable at every index.
 *
 * On-disk format ("elfsim-trace-v1", native-endian, 8-byte words):
 *
 *   char     magic[16]   "elfsim-trace-v1\0"
 *   u64      key         content hash (program image + behaviour
 *                        specs + instruction count + format version)
 *   u64      count       compiled instructions
 *   u64      callDepth, condN, indN, memN   end-state array lengths
 *   u64      endPC       generator PC after instruction count
 *   u64      checksum    FNV-1a of the other header scalars plus
 *                        every section byte after this field
 *   u64[]    callStack, condCount, indCount, memCount  (end state)
 *   u64[]    takenWords  ceil(count / 64) packed outcome bits
 *   u64[]    nextPC      count entries
 *   u64[]    memAddr     count entries (invalidAddr for non-mem ops)
 *   u32[]    siIdx       count entries (index into the program image)
 *
 * The file size is fully determined by the header, so truncation is
 * detected before the checksum is even computed; a bad magic, a stale
 * key, a size mismatch, or a checksum mismatch all raise ParseError,
 * which the TraceCache treats as "recompile", never as a failed cell.
 */

#ifndef ELFSIM_WORKLOAD_COMPILED_TRACE_HH
#define ELFSIM_WORKLOAD_COMPILED_TRACE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"
#include "workload/oracle_stream.hh"
#include "workload/program.hh"

namespace elfsim {

/** Immutable compiled prefix of a workload's architectural stream. */
class CompiledTrace
{
  public:
    /** Run the generation kernel for @a count instructions of
     *  @a prog and materialize the results. */
    static std::shared_ptr<const CompiledTrace>
    compile(const Program &prog, InstCount count);

    /**
     * Content hash identifying a (program, instruction count) pair:
     * the static image, every behaviour spec, the entry point, the
     * requested length, and the format version. Two programs with
     * identical content share a key (and therefore a cache file)
     * regardless of their names or addresses in memory.
     */
    static std::uint64_t key(const Program &prog, InstCount count);

    /** Compiled instructions. */
    InstCount size() const { return count_; }

    /** The content hash this trace was compiled (or loaded) under. */
    std::uint64_t cacheKey() const { return key_; }

    // 0-based accessors into the flat buffers (index < size()).
    std::uint32_t siIndex(InstCount i) const { return siIdx_[i]; }
    bool
    taken(InstCount i) const
    {
        return (takenWords_[i >> 6] >> (i & 63)) & 1;
    }
    Addr nextPC(InstCount i) const { return nextPC_[i]; }
    Addr memAddr(InstCount i) const { return memAddr_[i]; }

    /** Generator state after the last compiled instruction (lazy-tail
     *  resume point). */
    const OracleGen &endState() const { return end_; }

    /** Size of the instruction arrays in bytes (stat reporting). */
    std::size_t payloadBytes() const;

    /** Bytes served by a file mapping (0 for compiled/heap-loaded). */
    std::size_t mappedBytes() const { return mappedBytes_; }

    /**
     * Write the trace to @a path atomically (temp file + rename), so
     * concurrent processes sharing one cache directory never observe
     * a torn file. Throws IoError on filesystem failure.
     */
    void save(const std::string &path) const;

    /**
     * The complete elfsim-trace-v1 image (header + sections) as a
     * byte buffer — exactly the bytes save() writes. This is how the
     * distributed coordinator ships a compiled trace to its workers:
     * the wire payload carries the same magic / key / size / checksum
     * envelope as the on-disk cache, so the receiver validates it
     * with the same gate.
     */
    std::vector<char> serialized() const;

    /**
     * Load a trace from @a path, mmap when possible (falling back to
     * a plain read), verifying magic, version, size, checksum, and
     * that the stored key equals @a expect_key. Throws ParseError on
     * any mismatch or corruption, IoError if the file cannot be read.
     */
    static std::shared_ptr<const CompiledTrace>
    load(const std::string &path, std::uint64_t expect_key);

    /**
     * Rebuild a trace from an in-memory elfsim-trace-v1 image (the
     * receive side of serialized()), with the same magic / key / size
     * / checksum validation as load(). @a what names the image in
     * error messages. Throws ParseError on any defect.
     */
    static std::shared_ptr<const CompiledTrace>
    loadBytes(std::vector<char> image, std::uint64_t expect_key,
              const std::string &what);

    CompiledTrace(const CompiledTrace &) = delete;
    CompiledTrace &operator=(const CompiledTrace &) = delete;

  private:
    CompiledTrace() = default;

    /** Validate + adopt one complete elfsim-trace-v1 image (shared by
     *  the file and in-memory load paths); @a backing keeps @a data
     *  alive for the views, @a what names the image in errors. */
    static std::shared_ptr<const CompiledTrace>
    parseImage(const char *data, std::size_t size,
               std::uint64_t expect_key, const std::string &what,
               std::shared_ptr<void> backing, std::size_t mapped_bytes);

    InstCount count_ = 0;
    std::uint64_t key_ = 0;
    OracleGen end_;

    // Array views: into the owned vectors after compile(), into the
    // backing file (or its heap copy) after load().
    const std::uint64_t *takenWords_ = nullptr;
    const Addr *nextPC_ = nullptr;
    const Addr *memAddr_ = nullptr;
    const std::uint32_t *siIdx_ = nullptr;

    std::vector<std::uint64_t> ownTaken_;
    std::vector<Addr> ownNextPC_;
    std::vector<Addr> ownMemAddr_;
    std::vector<std::uint32_t> ownSiIdx_;

    /** Keeps a file mapping (or heap image) alive for the views. */
    std::shared_ptr<void> backing_;
    std::size_t mappedBytes_ = 0;
};

} // namespace elfsim

#endif // ELFSIM_WORKLOAD_COMPILED_TRACE_HH
