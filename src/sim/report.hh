/**
 * @file
 * Human-readable end-of-run report: headline metrics plus every
 * component's counters, in one place. Used by the examples and handy
 * for ad-hoc investigations.
 */

#ifndef ELFSIM_SIM_REPORT_HH
#define ELFSIM_SIM_REPORT_HH

#include <ostream>

#include "sim/core.hh"

namespace elfsim {

/** Print the headline metrics (IPC, MPKI, flush counts, ELF state). */
void printSummary(std::ostream &os, const Core &core);

/** Print the full per-component statistics dump. */
void printFullReport(std::ostream &os, const Core &core);

} // namespace elfsim

#endif // ELFSIM_SIM_REPORT_HH
