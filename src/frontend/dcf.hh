/**
 * @file
 * The Decoupled Fetcher (DCF): the BP1/BP2 address-generation engine
 * of Figure 1, with the bubble timing rules of Figure 2.
 *
 * Each non-stalled cycle it probes the 3-level BTB with the current
 * BPred PC, processes the entry content against the branch
 * predictors, pushes a block of fetch addresses into the FAQ, and
 * advances the BPred PC. Bubbles are inserted per the paper:
 *
 *  - L0 BTB hit: 0 bubbles when the bimodal component agrees with
 *    full TAGE (and for RAS/L0-indirect targets); 1 bubble when the
 *    tagged TAGE components override the bimodal;
 *  - L1 BTB hit: 1 bubble on a predicted-taken branch, 1 bubble when
 *    the entry tracks fewer than 16 instructions and falls through
 *    (the speculative proxy fall-through access was wrong), 0
 *    otherwise;
 *  - L2 BTB hit: as L1 plus 2 extra access cycles;
 *  - L0 indirect (BTC)/RAS target: as a direct taken branch;
 *  - ITTAGE (L1 indirect) target: 3 bubbles;
 *  - full BTB miss: sequential guessing at one block per cycle.
 */

#ifndef ELFSIM_FRONTEND_DCF_HH
#define ELFSIM_FRONTEND_DCF_HH

#include "bpred/predictor_bank.hh"
#include "btb/btb.hh"
#include "common/stats.hh"
#include "frontend/faq.hh"

namespace elfsim {

/** DCF statistics of interest for the experiments. */
struct DcfStats
{
    std::uint64_t blocks = 0;
    std::uint64_t btbMissBlocks = 0;
    std::uint64_t takenBlocks = 0;
    std::uint64_t bubbleCycles = 0;
    std::uint64_t restarts = 0;

    // Bubble breakdown (Figure 2 causes).
    std::uint64_t bubblesBimodalOverride = 0; ///< TAGE != bimodal @L0
    std::uint64_t bubblesBp2Taken = 0;        ///< taken on L1/L2 hit
    std::uint64_t bubblesShortEntry = 0;      ///< proxy f/t wrong
    std::uint64_t bubblesIndirectL1 = 0;      ///< ITTAGE access
    std::uint64_t bubblesAccess = 0;          ///< L2 BTB extra cycles
};

/** The decoupled address-generation engine. */
class DecoupledFetcher
{
  public:
    DecoupledFetcher(MultiBtb &btb, PredictorBank &bank, Faq &faq);

    /** Run one address-generation cycle. */
    void tick(Cycle now);

    /**
     * Restart BP1 at @a pc (pipeline flush, misfetch recovery, or
     * divergence). The caller is responsible for clearing the FAQ.
     */
    void restart(Addr pc, Cycle now);

    /** Stop generating (used while a variant holds the DCF flushed). */
    void halt() { pc = invalidAddr; }

    /** Current BPred PC (invalidAddr when halted). */
    Addr bpredPC() const { return pc; }

    const DcfStats &stats() const { return st; }

  private:
    /** Build the FAQ entry for a BTB hit; returns bubbles to insert. */
    unsigned processEntry(const BtbLookupResult &res, FaqEntry &out);

    MultiBtb &btb;
    PredictorBank &bank;
    Faq &faq;

    Addr pc = invalidAddr;
    Cycle stallUntil = 0;
    DcfStats st;
};

} // namespace elfsim

#endif // ELFSIM_FRONTEND_DCF_HH
