/**
 * @file
 * Figure 3 equivalent: the minimum branch misprediction penalty.
 *
 * The paper's point: with a decoupled fetcher, a flush must
 * re-traverse BP1/BP2/FAQ before the fetcher gets addresses — 3
 * cycles more than a coupled design. We measure the redirect-to-
 * first-fetch latency directly on an always-mispredicting
 * micro-workload for NoDCF, DCF, and the ELF variants (which exist
 * precisely to hide that difference). The four variants run as a
 * sweep grid, so `--jobs`, `--json`, and `--csv` all apply.
 */

#include <vector>

#include "bench_specs.hh"
#include "bench_util.hh"

using namespace elfsim;

int
main(int argc, char **argv)
{
    const bench::Options opt = bench::parseOptions(argc, argv);
    bench::banner(
        "Figure 3 — Minimum branch misprediction penalty",
        "Measured cycles from a mispredict flush to the first fetched "
        "instruction (paper: DCF = coupled + 3)");

    const SweepSpec spec = bench::finalizeSpec(
        bench::fig3Spec(opt.runOptions()), opt, argv[0]);
    const ExpandedSweep ex = expandSweep(spec);

    SweepRunner runner(bench::specJobs(opt, spec));
    bench::armRunner(runner, spec);
    const std::vector<RunResult> res = runner.run(ex.jobs);

    if (!opt.specPath.empty()) {
        bench::printResultsTable(res, ex.labels);
    } else {
        std::printf("%-10s %22s %14s\n", "frontend",
                    "redirect->fetch(cyc)", "rel. to NoDCF");
        const double base = res[0].avgRedirectToFetch;
        for (const RunResult &r : res)
            std::printf("%-10s %22.2f %+14.2f\n", r.variant.c_str(),
                        r.avgRedirectToFetch,
                        r.avgRedirectToFetch - base);
        std::printf("\npaper: DCF pays +3 cycles (BP1/BP2/FAQ); ELF "
                    "re-enters coupled mode and hides them.\n");
    }
    bench::exportResults(opt, runner);
    bench::printSweepTiming(runner);
    return bench::exitCode(runner);
}
