#include "common/json.hh"

#include <cerrno>
#include <cstdlib>

#include "common/error.hh"

namespace elfsim {
namespace json {

namespace {

const char *
kindName(Value::Kind k)
{
    switch (k) {
      case Value::Kind::Null: return "null";
      case Value::Kind::Bool: return "bool";
      case Value::Kind::Number: return "number";
      case Value::Kind::String: return "string";
      case Value::Kind::Array: return "array";
      case Value::Kind::Object: return "object";
    }
    return "?";
}

[[noreturn]] void
typeError(const char *want, Value::Kind got)
{
    throw ParseError(
        errorf("json: expected %s, have %s", want, kindName(got)));
}

} // namespace

bool
Value::asBool() const
{
    if (k != Kind::Bool)
        typeError("bool", k);
    return boolean;
}

std::uint64_t
Value::asU64() const
{
    if (k != Kind::Number)
        typeError("number", k);
    if (!text.empty() && text[0] == '-')
        throw ParseError(
            errorf("json: negative value '%s' for unsigned field",
                   text.c_str()));
    errno = 0;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
    if (errno == ERANGE || end != text.c_str() + text.size())
        throw ParseError(
            errorf("json: '%s' is not a 64-bit unsigned integer",
                   text.c_str()));
    return v;
}

double
Value::asDouble() const
{
    if (k != Kind::Number)
        typeError("number", k);
    // strtod is correctly rounded, so it exactly inverts the writer's
    // shortest-round-trip (to_chars) formatting.
    char *end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    if (end != text.c_str() + text.size())
        throw ParseError(
            errorf("json: bad number token '%s'", text.c_str()));
    return v;
}

const std::string &
Value::asString() const
{
    if (k != Kind::String)
        typeError("string", k);
    return text;
}

const std::vector<Value> &
Value::array() const
{
    if (k != Kind::Array)
        typeError("array", k);
    return elems;
}

const Value *
Value::find(std::string_view key) const
{
    if (k != Kind::Object)
        return nullptr;
    for (const auto &f : fields)
        if (f.first == key)
            return &f.second;
    return nullptr;
}

const Value &
Value::at(std::string_view key) const
{
    if (k != Kind::Object)
        typeError("object", k);
    if (const Value *v = find(key))
        return *v;
    throw ParseError(errorf("json: missing key '%.*s'",
                            int(key.size()), key.data()));
}

const std::vector<std::pair<std::string, Value>> &
Value::members() const
{
    if (k != Kind::Object)
        typeError("object", k);
    return fields;
}

class Parser
{
  public:
    explicit Parser(std::string_view text) : s(text) {}

    Value
    document()
    {
        Value v = value();
        skipWs();
        if (pos != s.size())
            fail("trailing garbage after document");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const char *what)
    {
        throw ParseError(
            errorf("json: %s at offset %zu", what, pos));
    }

    void
    skipWs()
    {
        while (pos < s.size() &&
               (s[pos] == ' ' || s[pos] == '\n' || s[pos] == '\t' ||
                s[pos] == '\r'))
            ++pos;
    }

    char
    peek()
    {
        skipWs();
        return pos < s.size() ? s[pos] : '\0';
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail("unexpected character");
        ++pos;
    }

    bool
    literal(std::string_view word)
    {
        if (s.substr(pos, word.size()) != word)
            return false;
        pos += word.size();
        return true;
    }

    Value
    value()
    {
        if (++depth > maxDepth)
            fail("nesting too deep");
        Value v = valueInner();
        --depth;
        return v;
    }

    Value
    valueInner()
    {
        const char c = peek();
        Value v;
        switch (c) {
          case '{': return object();
          case '[': return array();
          case '"':
            v.k = Value::Kind::String;
            v.text = string();
            return v;
          case 't':
            if (!literal("true"))
                fail("bad literal");
            v.k = Value::Kind::Bool;
            v.boolean = true;
            return v;
          case 'f':
            if (!literal("false"))
                fail("bad literal");
            v.k = Value::Kind::Bool;
            v.boolean = false;
            return v;
          case 'n':
            if (!literal("null"))
                fail("bad literal");
            return v;
          default:
            return number();
        }
    }

    Value
    number()
    {
        skipWs();
        const std::size_t start = pos;
        if (pos < s.size() && s[pos] == '-')
            ++pos;
        while (pos < s.size() &&
               ((s[pos] >= '0' && s[pos] <= '9') || s[pos] == '.' ||
                s[pos] == 'e' || s[pos] == 'E' || s[pos] == '+' ||
                s[pos] == '-'))
            ++pos;
        if (pos == start)
            fail("bad value");
        Value v;
        v.k = Value::Kind::Number;
        v.text.assign(s.substr(start, pos - start));
        // JSON forbids leading zeros ("01"); our writer never emits
        // them, so seeing one means the input is not ours.
        const std::size_t d = v.text[0] == '-' ? 1 : 0;
        if (v.text.size() > d + 1 && v.text[d] == '0' &&
            v.text[d + 1] >= '0' && v.text[d + 1] <= '9')
            fail("leading zero in number");
        // Validate the token eagerly so garbage fails at parse time.
        v.asDouble();
        return v;
    }

    std::string
    string()
    {
        expect('"');
        std::string out;
        while (pos < s.size() && s[pos] != '"') {
            char c = s[pos];
            if (c == '\\') {
                if (++pos >= s.size())
                    fail("unterminated escape");
                switch (s[pos]) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'n': out += '\n'; break;
                  case 't': out += '\t'; break;
                  case 'r': out += '\r'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  case 'u': {
                    if (pos + 4 >= s.size())
                        fail("truncated \\u escape");
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        const char h = s[pos + 1 + i];
                        code <<= 4;
                        if (h >= '0' && h <= '9')
                            code |= unsigned(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            code |= unsigned(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            code |= unsigned(h - 'A' + 10);
                        else
                            fail("bad \\u escape");
                    }
                    // The writer only emits \u00XX control escapes;
                    // encode anything else as UTF-8.
                    if (code < 0x80) {
                        out += char(code);
                    } else if (code < 0x800) {
                        out += char(0xc0 | (code >> 6));
                        out += char(0x80 | (code & 0x3f));
                    } else {
                        out += char(0xe0 | (code >> 12));
                        out += char(0x80 | ((code >> 6) & 0x3f));
                        out += char(0x80 | (code & 0x3f));
                    }
                    pos += 4;
                    break;
                  }
                  default:
                    fail("unknown escape");
                }
                ++pos;
            } else {
                out += c;
                ++pos;
            }
        }
        expect('"');
        return out;
    }

    Value
    object()
    {
        Value v;
        v.k = Value::Kind::Object;
        expect('{');
        if (peek() == '}') {
            ++pos;
            return v;
        }
        for (;;) {
            if (peek() != '"')
                fail("expected object key");
            std::string key = string();
            expect(':');
            v.fields.emplace_back(std::move(key), value());
            const char c = peek();
            if (c == ',') {
                ++pos;
                continue;
            }
            break;
        }
        expect('}');
        return v;
    }

    Value
    array()
    {
        Value v;
        v.k = Value::Kind::Array;
        expect('[');
        if (peek() == ']') {
            ++pos;
            return v;
        }
        for (;;) {
            v.elems.push_back(value());
            const char c = peek();
            if (c == ',') {
                ++pos;
                continue;
            }
            break;
        }
        expect(']');
        return v;
    }

    static constexpr int maxDepth = 64;

    std::string_view s;
    std::size_t pos = 0;
    int depth = 0;
};

Value
parse(std::string_view text)
{
    return Parser(text).document();
}

} // namespace json
} // namespace elfsim
