#include "workload/oracle_stream.hh"

namespace elfsim {

OracleStream::OracleStream(const Program &prog, std::size_t window_cap)
    : prog(prog), windowCap(window_cap), window(window_cap),
      pc(prog.entryPC()),
      condCount(prog.behaviors().numConds(), 0),
      indCount(prog.behaviors().numIndirects(), 0),
      memCount(prog.behaviors().numMems(), 0)
{
    // The call stack is capped at maxCallDepth; pre-sizing it keeps
    // deep call chains from growing the vector mid-simulation.
    callStack.reserve(maxCallDepth);
}

const OracleInst &
OracleStream::at(SeqNum idx)
{
    ELFSIM_ASSERT(idx >= baseIdx,
                  "oracle index %llu older than window base %llu",
                  (unsigned long long)idx, (unsigned long long)baseIdx);
    while (idx >= baseIdx + window.size())
        generateOne();
    return window.at(idx - baseIdx);
}

void
OracleStream::retireUpTo(SeqNum idx)
{
    while (!window.empty() && baseIdx <= idx) {
        window.dropFront();
        ++baseIdx;
    }
    if (window.empty() && baseIdx <= idx)
        baseIdx = idx + 1;
}

void
OracleStream::generateOne()
{
    ELFSIM_ASSERT(window.size() < windowCap,
                  "oracle window overflow (%zu insts unretired)",
                  window.size());

    const StaticInst *si = prog.instAt(pc);
    ELFSIM_ASSERT(si != nullptr,
                  "architectural path left the program image at 0x%llx",
                  (unsigned long long)pc);

    OracleInst oi;
    oi.si = si;
    Addr next = si->nextPC();

    if (si->isMemInst()) {
        const MemSpec &m = prog.behaviors().mem(si->behavior);
        oi.memAddr = m.address(memCount[si->behavior]++);
    }

    switch (si->branch) {
      case BranchKind::None:
        break;
      case BranchKind::CondDirect: {
        const CondSpec &c = prog.behaviors().cond(si->behavior);
        oi.taken = c.outcome(condCount[si->behavior]++);
        if (oi.taken)
            next = si->directTarget;
        break;
      }
      case BranchKind::UncondDirect:
        oi.taken = true;
        next = si->directTarget;
        break;
      case BranchKind::DirectCall:
        oi.taken = true;
        if (callStack.size() >= maxCallDepth)
            callStack.erase(callStack.begin());
        callStack.push_back(si->nextPC());
        next = si->directTarget;
        break;
      case BranchKind::IndirectJump: {
        const IndirectSpec &t = prog.behaviors().indirect(si->behavior);
        oi.taken = true;
        next = t.target(indCount[si->behavior]++);
        break;
      }
      case BranchKind::IndirectCall: {
        const IndirectSpec &t = prog.behaviors().indirect(si->behavior);
        oi.taken = true;
        if (callStack.size() >= maxCallDepth)
            callStack.erase(callStack.begin());
        callStack.push_back(si->nextPC());
        next = t.target(indCount[si->behavior]++);
        break;
      }
      case BranchKind::Return:
        oi.taken = true;
        if (callStack.empty()) {
            next = prog.entryPC();
        } else {
            next = callStack.back();
            callStack.pop_back();
        }
        break;
    }

    oi.nextPC = next;
    window.push(oi);
    pc = next;
}

} // namespace elfsim
