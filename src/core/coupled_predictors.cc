#include "core/coupled_predictors.hh"

namespace elfsim {

const char *
variantName(FrontendVariant v)
{
    switch (v) {
      case FrontendVariant::NoDcf: return "NoDCF";
      case FrontendVariant::Dcf: return "DCF";
      case FrontendVariant::LElf: return "L-ELF";
      case FrontendVariant::RetElf: return "RET-ELF";
      case FrontendVariant::IndElf: return "IND-ELF";
      case FrontendVariant::CondElf: return "COND-ELF";
      case FrontendVariant::UElf: return "U-ELF";
    }
    return "?";
}

CoupledPredictors::CoupledPredictors(const CoupledPredictorParams &params)
    : condKind(params.condKind), bimodalPred(params.bimodal),
      gsharePred(params.gshare), btcPred(params.btc),
      rasStack(params.rasEntries)
{
}

bool
CoupledPredictors::condPredict(Addr pc) const
{
    return condKind == CoupledCondKind::Gshare
               ? gsharePred.predict(pc)
               : bimodalPred.predict(pc);
}

bool
CoupledPredictors::condSaturated(Addr pc) const
{
    return condKind == CoupledCondKind::Gshare
               ? gsharePred.saturated(pc)
               : bimodalPred.saturated(pc);
}

void
CoupledPredictors::trainCommit(Addr pc, BranchKind kind, bool taken,
                               Addr target, FetchMode mode)
{
    // Qualitatively it makes little sense to allocate entries for
    // branches that are seldom fetched in coupled mode (paper IV-D3).
    if (mode != FetchMode::Coupled)
        return;
    if (kind == BranchKind::CondDirect) {
        if (condKind == CoupledCondKind::Gshare)
            gsharePred.update(pc, taken);
        else
            bimodalPred.update(pc, taken);
    } else if (kind == BranchKind::IndirectJump ||
             kind == BranchKind::IndirectCall)
        btcPred.update(pc, target);
}

double
CoupledPredictors::storageBytes() const
{
    const double cond = condKind == CoupledCondKind::Gshare
                            ? gsharePred.storageBytes()
                            : bimodalPred.storageBytes();
    return cond + btcPred.storageBytes() + rasStack.storageBytes();
}

ElfCoupledPolicy::ElfCoupledPolicy(FrontendVariant variant,
                                   CoupledPredictors &preds,
                                   bool cond_require_saturation)
    : variant(variant), preds(preds),
      condRequireSaturation(cond_require_saturation)
{
}

bool
ElfCoupledPolicy::predictCond(DynInst &di)
{
    if (!hasCoupledBimodal(variant))
        return false;
    // Filter: only speculate past conditionals whose 3-bit counter is
    // saturated, to limit wrong-path pollution (paper Section VI-B).
    // The filter can be ablated (bench_ablation_elf).
    if (condRequireSaturation && !preds.condSaturated(di.pc()))
        return false;
    di.hasPrediction = true;
    di.predTaken = preds.condPredict(di.pc());
    di.predTarget =
        di.predTaken ? di.si->directTarget : di.si->nextPC();
    return true;
}

bool
ElfCoupledPolicy::predictIndirect(DynInst &di)
{
    if (!hasCoupledBtc(variant))
        return false;
    const Addr t = preds.btc().predict(di.pc());
    if (t == invalidAddr)
        return false; // BTC miss: stall as in L-ELF
    di.hasPrediction = true;
    di.predTaken = true;
    di.predTarget = t;
    return true;
}

bool
ElfCoupledPolicy::predictReturn(DynInst &di)
{
    if (!hasCoupledRas(variant))
        return false;
    const Addr t = preds.ras().pop();
    if (t == invalidAddr)
        return false;
    di.hasPrediction = true;
    di.predTaken = true;
    di.predTarget = t;
    return true;
}

void
ElfCoupledPolicy::onCall(Addr ret_addr)
{
    if (hasCoupledRas(variant))
        preds.ras().push(ret_addr);
}

bool
NoDcfPolicy::predictCond(DynInst &di)
{
    const TagePrediction tp = bank.predictCond(di.pc());
    di.tagePred = tp;
    di.hasPrediction = true;
    di.predTaken = tp.taken;
    di.predTarget =
        tp.taken ? di.si->directTarget : di.si->nextPC();
    bank.specBranch(di.pc(), BranchKind::CondDirect, tp.taken);
    lastExtra = 0;
    return true;
}

bool
NoDcfPolicy::predictIndirect(DynInst &di)
{
    const Addr l0 = bank.predictIndirectL0(di.pc());
    const IttagePrediction ip = bank.predictIndirect(di.pc());
    di.ittagePred = ip;
    Addr t = l0;
    lastExtra = 0;
    if (t == invalidAddr) {
        t = ip.target;
        lastExtra = 2; // the 3-cycle ITTAGE instead of the 1-cycle BTC
    }
    if (t == invalidAddr)
        return false; // wait for execution
    di.hasPrediction = true;
    di.predTaken = true;
    di.predTarget = t;
    bank.specBranch(di.pc(), di.si->branch, true);
    return true;
}

bool
NoDcfPolicy::predictReturn(DynInst &di)
{
    const Addr t = bank.peekReturn();
    if (t == invalidAddr)
        return false;
    di.hasPrediction = true;
    di.predTaken = true;
    di.predTarget = t;
    bank.specBranch(di.pc(), BranchKind::Return, true);
    lastExtra = 0;
    return true;
}

void
NoDcfPolicy::onCall(Addr ret_addr)
{
    bank.specBranch(ret_addr - instBytes, BranchKind::DirectCall, true);
    lastExtra = 0;
}

unsigned
NoDcfPolicy::extraBubbles(const DynInst &di) const
{
    (void)di;
    return lastExtra;
}

void
NoDcfPolicy::onUncond(Addr pc)
{
    bank.specBranch(pc, BranchKind::UncondDirect, true);
    lastExtra = 0;
}

} // namespace elfsim
