/**
 * @file
 * Fundamental scalar types used across the simulator.
 *
 * The simulator models an abstract fixed-length (4-byte) ISA in the
 * spirit of ARMv8. Addresses are byte addresses; instruction PCs are
 * always 4-byte aligned.
 */

#ifndef ELFSIM_COMMON_TYPES_HH
#define ELFSIM_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace elfsim {

/** Byte address in the simulated address space. */
using Addr = std::uint64_t;

/** Simulation time in core clock cycles. */
using Cycle = std::uint64_t;

/** Global dynamic instruction sequence number (monotonic, 1-based). */
using SeqNum = std::uint64_t;

/** Instruction count. */
using InstCount = std::uint64_t;

/** Architectural register index. */
using RegIndex = std::uint16_t;

/** Size of one fixed-length instruction in bytes. */
constexpr Addr instBytes = 4;

/** Invalid/absent address sentinel. */
constexpr Addr invalidAddr = std::numeric_limits<Addr>::max();

/** Invalid sequence number sentinel (sequence numbers start at 1). */
constexpr SeqNum invalidSeqNum = 0;

/** Number of architectural integer registers in the abstract ISA. */
constexpr RegIndex numArchRegs = 64;

/** Convert an instruction count to a byte span. */
constexpr Addr
instsToBytes(InstCount n)
{
    return static_cast<Addr>(n) * instBytes;
}

/** Convert a byte span to an instruction count (span must be aligned). */
constexpr InstCount
bytesToInsts(Addr bytes)
{
    return static_cast<InstCount>(bytes / instBytes);
}

} // namespace elfsim

#endif // ELFSIM_COMMON_TYPES_HH
