/**
 * @file
 * Long-running stress: every front-end variant over a workload mix
 * that exercises all redirect kinds simultaneously (mispredicts,
 * misfetches, divergences, order violations, payload-held flushes),
 * asserting global invariants the whole way.
 */

#include <gtest/gtest.h>

#include "sim/core.hh"
#include "workload/catalog.hh"

using namespace elfsim;

namespace {

/** A deliberately nasty mix. */
Program
nasty()
{
    CfgParams p;
    p.numFuncs = 20;
    p.recursionFrac = 0.4;
    p.indirectCallFrac = 0.2;
    p.indirectFanout = 8;
    p.randomTakenProb = 0.45;
    p.fracPatternBranches = 0.3;
    p.fracLoopBranches = 0.3;
    p.storeFrac = 0.16;
    p.dataFootprint = 24 << 10; // store/load collisions likely
    return generateCfg(p, 0xbad, "stress_nasty");
}

} // namespace

class Stress : public ::testing::TestWithParam<FrontendVariant>
{};

TEST_P(Stress, LongRunHoldsInvariants)
{
    Program p = nasty();
    SimConfig cfg = makeConfig(GetParam());
    // Small structures to stress the gating paths.
    cfg.checkpointEntries = 64;
    cfg.faqEntries = 8;
    Core core(cfg, p);

    InstCount last = 0;
    for (int chunk = 0; chunk < 10; ++chunk) {
        core.run(15000);
        // Forward progress each chunk.
        ASSERT_GT(core.committed(), last);
        last = core.committed();
        // Commit accounting is monotonic and self-consistent.
        const auto &be = core.backend().stats();
        ASSERT_GE(be.committed, be.committedBranches);
        ASSERT_GE(be.committedBranches,
                  be.condMispredicts + be.targetMispredicts);
    }
    EXPECT_GE(core.committed(), 150000u);

    // No flush may be left dangling: after draining the machine, a
    // few extra cycles must not wedge or fire stale redirects.
    for (int i = 0; i < 100; ++i)
        core.tick();
    EXPECT_GT(core.committed(), 150000u);
}

INSTANTIATE_TEST_SUITE_P(
    Variants, Stress,
    ::testing::Values(FrontendVariant::Dcf, FrontendVariant::NoDcf,
                      FrontendVariant::LElf, FrontendVariant::UElf),
    [](const ::testing::TestParamInfo<FrontendVariant> &info) {
        std::string n = variantName(info.param);
        for (char &c : n) {
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return n;
    });
