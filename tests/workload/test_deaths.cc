#include <gtest/gtest.h>

#include "common/queue.hh"
#include "workload/oracle_stream.hh"
#include "workload/program_builder.hh"

using namespace elfsim;

// Death tests: the simulator panics loudly on API misuse and broken
// invariants instead of corrupting state.

TEST(Deaths, BuilderRequiresOpenBlock)
{
    ProgramBuilder b;
    EXPECT_DEATH(b.addFiller(1), "no open block");
}

TEST(Deaths, BuilderRejectsDoubleBegin)
{
    ProgramBuilder b;
    b.beginBlock();
    EXPECT_DEATH(b.beginBlock(), "not terminated");
}

TEST(Deaths, BuilderRejectsDanglingTarget)
{
    ProgramBuilder b;
    b.beginBlock();
    b.endJump(7); // block 7 never created
    EXPECT_DEATH(b.finalize("t"), "references block");
}

TEST(Deaths, BuilderRejectsFinalizeWithOpenBlock)
{
    ProgramBuilder b;
    b.beginBlock();
    EXPECT_DEATH(b.finalize("t"), "open block");
}

TEST(Deaths, OracleWindowOverflowIsLoud)
{
    ProgramBuilder b;
    b.beginBlock();
    b.addFiller(4);
    b.endJump(0);
    Program p = b.finalize("t");
    OracleStream os(p, /*window_cap=*/64);
    // Never retiring: the window must overflow with a clear message.
    EXPECT_DEATH(os.at(100000), "window overflow");
}

TEST(Deaths, OracleRejectsRetiredIndex)
{
    ProgramBuilder b;
    b.beginBlock();
    b.addFiller(4);
    b.endJump(0);
    Program p = b.finalize("t");
    OracleStream os(p);
    os.at(10);
    os.retireUpTo(5);
    EXPECT_DEATH(os.at(3), "older than window");
}

TEST(Deaths, QueueMisuse)
{
    BoundedQueue<int> q(2);
    EXPECT_DEATH(q.pop(), "empty");
    q.push(1);
    q.push(2);
    EXPECT_DEATH(q.push(3), "full");
}
