/**
 * @file
 * Named workload catalog — the Table I equivalent.
 *
 * Each entry pairs a benchmark-like name with CFG-generator parameters
 * tuned so the *front-end profile* (branch MPKI class, I-footprint
 * class, BTB pressure, recursion/indirection usage, D-side pressure)
 * matches what the paper reports for that workload. Absolute IPC is
 * not expected to match; the response to DCF/ELF should.
 */

#ifndef ELFSIM_WORKLOAD_CATALOG_HH
#define ELFSIM_WORKLOAD_CATALOG_HH

#include <string>
#include <vector>

#include "workload/builders.hh"
#include "workload/program.hh"

namespace elfsim {

/** One catalog entry. */
struct WorkloadSpec
{
    std::string name;   ///< benchmark-like name (e.g. "641.leela")
    std::string suite;  ///< "2K17 INT", "2K6 INT", "2K6 FP", ...
    std::string notes;  ///< behavioural intent, one line
    CfgParams params;
    std::uint64_t seed = 1;
};

/** The full catalog (all suites). */
const std::vector<WorkloadSpec> &workloadCatalog();

/** Find an entry by name; nullptr if absent. */
const WorkloadSpec *findWorkload(const std::string &name);

/** Build the program for a catalog entry. */
Program buildWorkload(const WorkloadSpec &spec);

/**
 * Names of the ELF-relevant subset shown per-workload in Figures 6-8
 * (the paper plots only workloads that respond to ELF).
 */
std::vector<std::string> elfRelevantWorkloads();

/** Distinct suite names, in report order. */
std::vector<std::string> catalogSuites();

/** Names of all workloads in a given suite. */
std::vector<std::string> suiteWorkloads(const std::string &suite);

} // namespace elfsim

#endif // ELFSIM_WORKLOAD_CATALOG_HH
