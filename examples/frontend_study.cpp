/**
 * @file
 * Front-end design study: given a workload, compare every front-end
 * organization this library models — the coupled baseline (NoDCF),
 * the decoupled baseline (DCF), and the five ELF variants — the way
 * an architect would when sizing a new core's fetch unit.
 *
 *   $ ./frontend_study [workload-name]
 *
 * Workload names come from the Table I catalog (bench_table1_workloads
 * lists them); the default is the high-MPKI MCTS proxy.
 */

#include <cstdio>
#include <iostream>
#include <string>

#include "sim/report.hh"
#include "sim/runner.hh"
#include "workload/catalog.hh"

using namespace elfsim;

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "641.leela";
    const WorkloadSpec *spec = findWorkload(name);
    if (!spec) {
        std::fprintf(stderr,
                     "unknown workload '%s' (see "
                     "bench_table1_workloads for the catalog)\n",
                     name.c_str());
        return 1;
    }

    Program program = buildWorkload(*spec);
    std::printf("workload: %-16s  %s\n", spec->name.c_str(),
                spec->notes.c_str());
    std::printf("code %lluKB, data %lluKB\n\n",
                (unsigned long long)(program.footprintBytes() / 1024),
                (unsigned long long)(spec->params.dataFootprint /
                                     1024));

    RunOptions opts;
    opts.warmupInsts = 100000;
    opts.measureInsts = 200000;

    // Normalize to the DCF baseline (run it first).
    const RunResult dcf =
        runVariant(program, FrontendVariant::Dcf, opts);

    const FrontendVariant variants[] = {
        FrontendVariant::NoDcf,  FrontendVariant::Dcf,
        FrontendVariant::LElf,   FrontendVariant::RetElf,
        FrontendVariant::IndElf, FrontendVariant::CondElf,
        FrontendVariant::UElf,
    };

    std::printf("%-9s %8s %8s %7s %9s %9s %8s\n", "frontend", "IPC",
                "vs DCF", "MPKI", "flushes", "cpl/per", "diverg.");

    for (FrontendVariant v : variants) {
        const RunResult r =
            v == FrontendVariant::Dcf ? dcf
                                      : runVariant(program, v, opts);
        std::printf("%-9s %8.3f %8.3f %7.1f %9llu %9.1f %8llu\n",
                    r.variant.c_str(), r.ipc, r.ipc / dcf.ipc,
                    r.branchMpki,
                    (unsigned long long)r.execFlushes,
                    r.avgCoupledInsts,
                    (unsigned long long)r.divergenceFlushes);
        std::fflush(stdout);
    }

    std::printf("\nreading guide: DCF beats NoDCF when taken-branch "
                "bubbles/prefetch dominate;\nELF beats DCF when "
                "flushes are frequent (high MPKI) — coupled mode "
                "hides the\nBP1/BP2/FAQ restart latency.\n");

    // Deep dive: the full component report for a U-ELF run.
    std::printf("\n");
    {
        SimConfig cfg = makeConfig(FrontendVariant::UElf);
        Core core(cfg, program);
        core.run(opts.warmupInsts + opts.measureInsts);
        printFullReport(std::cout, core);
    }
    return 0;
}
