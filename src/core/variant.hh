/**
 * @file
 * Front-end variants evaluated in the paper: the coupled baseline
 * (NoDCF), the decoupled baseline (DCF), and the ELF family.
 */

#ifndef ELFSIM_CORE_VARIANT_HH
#define ELFSIM_CORE_VARIANT_HH

#include <cstdint>

namespace elfsim {

/** Front-end organization. */
enum class FrontendVariant : std::uint8_t {
    NoDcf,   ///< coupled fetch only (no decoupled fetcher)
    Dcf,     ///< baseline decoupled fetcher (Table II)
    LElf,    ///< Limited ELF: sequential-only coupled mode
    RetElf,  ///< coupled RAS only (speculate past returns)
    IndElf,  ///< coupled BTC only (speculate past indirects)
    CondElf, ///< coupled bimodal only (speculate past conditionals)
    UElf,    ///< all coupled predictors
};

/** @return the variant's display name. */
const char *variantName(FrontendVariant v);

/** @return true iff the variant uses the ELF coupled/decoupled
 *  mode machinery. */
constexpr bool
isElf(FrontendVariant v)
{
    return v != FrontendVariant::NoDcf && v != FrontendVariant::Dcf;
}

/** @return true iff coupled mode may predict returns. */
constexpr bool
hasCoupledRas(FrontendVariant v)
{
    return v == FrontendVariant::RetElf || v == FrontendVariant::UElf;
}

/** @return true iff coupled mode may predict non-return indirects. */
constexpr bool
hasCoupledBtc(FrontendVariant v)
{
    return v == FrontendVariant::IndElf || v == FrontendVariant::UElf;
}

/** @return true iff coupled mode may predict conditionals. */
constexpr bool
hasCoupledBimodal(FrontendVariant v)
{
    return v == FrontendVariant::CondElf || v == FrontendVariant::UElf;
}

/**
 * How flushes triggered by coupled-fetched instructions are allowed
 * to proceed (paper Section IV-D1's design discussion).
 */
enum class PayloadPolicy : std::uint8_t {
    /** Checkpoint payloads are populated from FAQ information as the
     *  DCF catches up; flushes wait only until then (the paper's
     *  proposed mechanism; default). */
    FaqFill,
    /** Payloads never fill early: a coupled instruction's flush waits
     *  until it reaches the ROB head (the paper's simple baseline). */
    RobHead,
    /** No gating at all: flushes apply immediately (idealized bound,
     *  as if checkpoints were free). */
    Ideal,
};

} // namespace elfsim

#endif // ELFSIM_CORE_VARIANT_HH
