#include "workload/compiled_trace.hh"

#include <cstdio>
#include <cstring>
#include <fstream>

#include "common/error.hh"
#include "common/hash.hh"
#include "common/logging.hh"

#if defined(__unix__) || defined(__APPLE__)
#define ELFSIM_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace elfsim {

namespace {

constexpr char traceMagic[16] = "elfsim-trace-v1"; // includes the NUL

/** Fixed-size part of the file, through the checksum field. */
constexpr std::size_t headerBytes = 16 + 8 * 8;

/** Header scalar fields, in file order (after the magic). */
struct TraceHeader
{
    std::uint64_t key = 0;
    std::uint64_t count = 0;
    std::uint64_t callDepth = 0;
    std::uint64_t condN = 0;
    std::uint64_t indN = 0;
    std::uint64_t memN = 0;
    std::uint64_t endPC = 0;
    std::uint64_t checksum = 0;
};

std::uint64_t
takenWordsFor(std::uint64_t count)
{
    return (count + 63) / 64;
}

/** Total file size implied by the header (no overflow for the
 *  sanity-capped field values enforced by the loader). */
std::uint64_t
expectedFileSize(const TraceHeader &h)
{
    const std::uint64_t u64s = h.callDepth + h.condN + h.indN + h.memN +
                               takenWordsFor(h.count) + 2 * h.count;
    return headerBytes + 8 * u64s + 4 * h.count;
}

/**
 * Checksum of the semantic content: every header scalar except the
 * checksum itself, then the raw section bytes. @a sections is the
 * contiguous region following the header.
 */
std::uint64_t
contentChecksum(const TraceHeader &h, const void *sections,
                std::size_t section_bytes)
{
    Fnv1a hash;
    hash.u64(h.key)
        .u64(h.count)
        .u64(h.callDepth)
        .u64(h.condN)
        .u64(h.indN)
        .u64(h.memN)
        .u64(h.endPC);
    hash.bytes(sections, section_bytes);
    return hash.value();
}

/** RAII holder keeping a loaded file image alive for the views. */
struct FileBacking
{
    void *map = nullptr;       ///< mmap base (null for heap images)
    std::size_t mapLen = 0;
    std::vector<char> heap;    ///< read() fallback image

    const char *
    data() const
    {
        return map ? static_cast<const char *>(map) : heap.data();
    }
    std::size_t size() const { return map ? mapLen : heap.size(); }

    ~FileBacking()
    {
#ifdef ELFSIM_HAVE_MMAP
        if (map)
            ::munmap(map, mapLen);
#endif
    }
};

/** Map (or read) a whole file; null result means "cannot open". */
std::shared_ptr<FileBacking>
openFileImage(const std::string &path)
{
    auto backing = std::make_shared<FileBacking>();
#ifdef ELFSIM_HAVE_MMAP
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd >= 0) {
        struct stat st;
        if (::fstat(fd, &st) == 0 && st.st_size > 0) {
            void *p = ::mmap(nullptr, std::size_t(st.st_size), PROT_READ,
                             MAP_PRIVATE, fd, 0);
            if (p != MAP_FAILED) {
                backing->map = p;
                backing->mapLen = std::size_t(st.st_size);
                ::close(fd);
                return backing;
            }
        }
        ::close(fd);
    }
#endif
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return nullptr;
    in.seekg(0, std::ios::end);
    const std::streamoff len = in.tellg();
    in.seekg(0, std::ios::beg);
    backing->heap.resize(len > 0 ? std::size_t(len) : 0);
    if (len > 0 &&
        !in.read(backing->heap.data(), std::streamsize(len)))
        return nullptr;
    return backing;
}

} // namespace

std::uint64_t
CompiledTrace::key(const Program &prog, InstCount count)
{
    Fnv1a h;
    h.str(traceMagic); // format version participates in the key
    h.u64(prog.codeBase()).u64(prog.entryPC()).u64(count);

    const std::vector<StaticInst> &image = prog.instructions();
    h.u64(image.size());
    for (const StaticInst &si : image) {
        h.u64(si.pc)
            .u64(std::uint64_t(si.cls))
            .u64(std::uint64_t(si.branch))
            .u64(si.directTarget)
            .u64(si.destReg)
            .u64(si.srcRegs[0])
            .u64(si.srcRegs[1])
            .u64(si.behavior);
    }

    const BehaviorSet &b = prog.behaviors();
    h.u64(b.numConds());
    for (std::size_t i = 0; i < b.numConds(); ++i) {
        const CondSpec &c = b.cond(std::uint32_t(i));
        h.u64(std::uint64_t(c.kind))
            .f64(c.takenProb)
            .u64(c.period)
            .u64(c.seed)
            .f64(c.patternBias);
    }
    h.u64(b.numIndirects());
    for (std::size_t i = 0; i < b.numIndirects(); ++i) {
        const IndirectSpec &t = b.indirect(std::uint32_t(i));
        h.u64(std::uint64_t(t.kind)).u64(t.period).u64(t.seed);
        h.u64(t.targets.size());
        for (Addr a : t.targets)
            h.u64(a);
    }
    h.u64(b.numMems());
    for (std::size_t i = 0; i < b.numMems(); ++i) {
        const MemSpec &m = b.mem(std::uint32_t(i));
        h.u64(std::uint64_t(m.kind))
            .u64(m.regionBase)
            .u64(m.regionSize)
            .u64(m.stride)
            .u64(m.seed);
    }
    return h.value();
}

std::shared_ptr<const CompiledTrace>
CompiledTrace::compile(const Program &prog, InstCount count)
{
    std::shared_ptr<CompiledTrace> t(new CompiledTrace);
    t->count_ = count;
    t->key_ = key(prog, count);

    t->ownTaken_.assign(takenWordsFor(count), 0);
    t->ownNextPC_.resize(count);
    t->ownMemAddr_.resize(count);
    t->ownSiIdx_.resize(count);

    const StaticInst *imageBase = prog.instructions().data();
    OracleGen gen;
    gen.reset(prog);
    for (InstCount i = 0; i < count; ++i) {
        const OracleInst oi = gen.step(prog);
        t->ownSiIdx_[i] = std::uint32_t(oi.si - imageBase);
        if (oi.taken)
            t->ownTaken_[i >> 6] |= std::uint64_t(1) << (i & 63);
        t->ownNextPC_[i] = oi.nextPC;
        t->ownMemAddr_[i] = oi.memAddr;
    }
    t->end_ = std::move(gen);

    t->takenWords_ = t->ownTaken_.data();
    t->nextPC_ = t->ownNextPC_.data();
    t->memAddr_ = t->ownMemAddr_.data();
    t->siIdx_ = t->ownSiIdx_.data();
    return t;
}

std::size_t
CompiledTrace::payloadBytes() const
{
    return 8 * (takenWordsFor(count_) + 2 * count_) + 4 * count_;
}

std::vector<char>
CompiledTrace::serialized() const
{
    TraceHeader h;
    h.key = key_;
    h.count = count_;
    h.callDepth = end_.callStack.size();
    h.condN = end_.condCount.size();
    h.indN = end_.indCount.size();
    h.memN = end_.memCount.size();
    h.endPC = end_.pc;

    // Assemble the whole image once so the checksum and every
    // consumer (the file write, the wire payload) see the exact same
    // bytes: header first, then the contiguous section region.
    std::vector<char> image;
    image.reserve(std::size_t(expectedFileSize(h)));
    image.resize(headerBytes);
    const auto appendU64s = [&image](const std::uint64_t *p,
                                     std::size_t n) {
        const char *raw = reinterpret_cast<const char *>(p);
        image.insert(image.end(), raw, raw + 8 * n);
    };
    appendU64s(end_.callStack.data(), h.callDepth);
    appendU64s(end_.condCount.data(), h.condN);
    appendU64s(end_.indCount.data(), h.indN);
    appendU64s(end_.memCount.data(), h.memN);
    appendU64s(takenWords_, takenWordsFor(count_));
    appendU64s(nextPC_, count_);
    appendU64s(memAddr_, count_);
    const char *siRaw = reinterpret_cast<const char *>(siIdx_);
    image.insert(image.end(), siRaw, siRaw + 4 * count_);

    h.checksum = contentChecksum(h, image.data() + headerBytes,
                                 image.size() - headerBytes);

    std::memcpy(image.data(), traceMagic, sizeof(traceMagic));
    const std::uint64_t scalars[] = {h.key,   h.count, h.callDepth,
                                     h.condN, h.indN,  h.memN,
                                     h.endPC, h.checksum};
    std::memcpy(image.data() + 16, scalars, sizeof(scalars));
    return image;
}

void
CompiledTrace::save(const std::string &path) const
{
    const std::vector<char> image = serialized();

    // Write to a private temp file and rename into place: readers of
    // a shared cache directory only ever see complete files.
    const std::string tmp =
        path + ".tmp." + std::to_string(
#ifdef ELFSIM_HAVE_MMAP
                              std::uint64_t(::getpid())
#else
                              std::uint64_t(0)
#endif
        );
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os)
            throw IoError(errorf("cannot open '%s' for writing",
                                 tmp.c_str()));
        os.write(image.data(), std::streamsize(image.size()));
        if (!os)
            throw IoError(errorf("write to '%s' failed", tmp.c_str()));
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        throw IoError(errorf("cannot rename '%s' into '%s'",
                             tmp.c_str(), path.c_str()));
    }
}

std::shared_ptr<const CompiledTrace>
CompiledTrace::load(const std::string &path, std::uint64_t expect_key)
{
    std::shared_ptr<FileBacking> backing = openFileImage(path);
    if (!backing)
        throw IoError(errorf("cannot read trace file '%s'",
                             path.c_str()));
    const char *data = backing->data();
    const std::size_t size = backing->size();
    const std::size_t mapped = backing->map ? backing->mapLen : 0;
    return parseImage(data, size, expect_key,
                      errorf("trace file '%s'", path.c_str()),
                      std::move(backing), mapped);
}

std::shared_ptr<const CompiledTrace>
CompiledTrace::loadBytes(std::vector<char> image,
                         std::uint64_t expect_key,
                         const std::string &what)
{
    // vector<char> (not string): the heap allocation is suitably
    // aligned for the u64 section views.
    auto holder = std::make_shared<std::vector<char>>(std::move(image));
    const char *data = holder->data();
    const std::size_t size = holder->size();
    return parseImage(data, size, expect_key, what, std::move(holder),
                      0);
}

std::shared_ptr<const CompiledTrace>
CompiledTrace::parseImage(const char *data, std::size_t size,
                          std::uint64_t expect_key,
                          const std::string &what,
                          std::shared_ptr<void> backing,
                          std::size_t mapped_bytes)
{
    if (size < headerBytes)
        throw ParseError(errorf("%s truncated "
                                "(%zu bytes, header needs %zu)",
                                what.c_str(), size, headerBytes));
    if (std::memcmp(data, traceMagic, sizeof(traceMagic)) != 0)
        throw ParseError(errorf("%s has a bad magic "
                                "(not an elfsim-trace-v1 image)",
                                what.c_str()));

    TraceHeader h;
    std::memcpy(&h.key, data + 16, 8 * 8); // scalars are contiguous
    if (h.key != expect_key)
        throw ParseError(errorf(
            "%s is stale: key %016llx, expected %016llx",
            what.c_str(), (unsigned long long)h.key,
            (unsigned long long)expect_key));

    // Field sanity before any size arithmetic (caps far above real
    // values keep a corrupt length from overflowing the size check).
    constexpr std::uint64_t fieldCap = std::uint64_t(1) << 32;
    if (h.count >= fieldCap || h.callDepth > OracleGen::maxCallDepth ||
        h.condN >= fieldCap || h.indN >= fieldCap || h.memN >= fieldCap)
        throw ParseError(errorf("%s has implausible "
                                "section lengths", what.c_str()));
    if (size != expectedFileSize(h))
        throw ParseError(errorf(
            "%s size mismatch (%zu bytes, header "
            "implies %llu)", what.c_str(), size,
            (unsigned long long)expectedFileSize(h)));

    const char *sections = data + headerBytes;
    const std::size_t sectionBytes = size - headerBytes;
    if (contentChecksum(h, sections, sectionBytes) != h.checksum)
        throw ParseError(errorf("%s failed its checksum "
                                "(corrupt or torn write)",
                                what.c_str()));

    std::shared_ptr<CompiledTrace> t(new CompiledTrace);
    t->count_ = h.count;
    t->key_ = h.key;
    t->backing_ = std::move(backing);
    t->mappedBytes_ = mapped_bytes;

    const std::uint64_t *u64s =
        reinterpret_cast<const std::uint64_t *>(sections);
    const auto takeU64s = [&u64s](std::vector<std::uint64_t> &out,
                                  std::size_t n) {
        out.assign(u64s, u64s + n);
        u64s += n;
    };
    t->end_.pc = h.endPC;
    t->end_.callStack.reserve(OracleGen::maxCallDepth);
    t->end_.callStack.assign(u64s, u64s + h.callDepth);
    u64s += h.callDepth;
    takeU64s(t->end_.condCount, h.condN);
    takeU64s(t->end_.indCount, h.indN);
    takeU64s(t->end_.memCount, h.memN);

    t->takenWords_ = u64s;
    u64s += takenWordsFor(h.count);
    t->nextPC_ = u64s;
    u64s += h.count;
    t->memAddr_ = u64s;
    u64s += h.count;
    t->siIdx_ = reinterpret_cast<const std::uint32_t *>(u64s);
    return t;
}

} // namespace elfsim
