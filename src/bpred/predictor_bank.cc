#include "bpred/predictor_bank.hh"

namespace elfsim {

PredictorBank::PredictorBank(const PredictorBankParams &params)
    : params(params), tagePred(params.tage), ittagePred(params.ittage),
      l0Ind(params.l0Indirect), specRasStack(params.rasEntries),
      archRasStack(params.rasEntries)
{
}

void
PredictorBank::specBranch(Addr pc, BranchKind kind, bool taken)
{
    switch (kind) {
      case BranchKind::None:
        return;
      case BranchKind::CondDirect:
        tagePred.pushSpec(pc, taken);
        ittagePred.pushSpec(pc, taken);
        return;
      case BranchKind::DirectCall:
      case BranchKind::IndirectCall:
        specRasStack.push(pc + instBytes);
        break;
      case BranchKind::Return:
        specRasStack.pop();
        break;
      default:
        break;
    }
    // Non-conditional control transfers are always taken; record one
    // taken bit so indirect history sees the control flow.
    tagePred.pushSpec(pc, true);
    ittagePred.pushSpec(pc, true);
}

void
PredictorBank::commitBranch(Addr pc, BranchKind kind, bool taken,
                            Addr target, const TagePrediction &tp,
                            const IttagePrediction &ip,
                            bool history_visible)
{
    switch (kind) {
      case BranchKind::None:
        return;
      case BranchKind::CondDirect: {
        if (tp.valid) {
            tagePred.update(pc, tp, taken);
        } else {
            const TagePrediction archPred = tagePred.predictArch(pc);
            tagePred.update(pc, archPred, taken);
        }
        if (history_visible) {
            tagePred.pushArch(pc, taken);
            ittagePred.pushArch(pc, taken);
        }
        return;
      }
      case BranchKind::IndirectJump:
      case BranchKind::IndirectCall: {
        if (ip.valid) {
            ittagePred.update(pc, ip, target);
        } else {
            const IttagePrediction archPred =
                ittagePred.predictArch(pc);
            ittagePred.update(pc, archPred, target);
        }
        l0Ind.update(pc, target);
        break;
      }
      default:
        break;
    }
    // The architectural RAS tracks every call/return regardless of
    // BTB visibility.
    if (isCall(kind))
        archRasStack.push(pc + instBytes);
    if (isReturn(kind))
        archRasStack.pop();
    if (history_visible) {
        tagePred.pushArch(pc, true);
        ittagePred.pushArch(pc, true);
    }
}

void
PredictorBank::resetSpecToArch()
{
    tagePred.resetSpecToArch();
    ittagePred.resetSpecToArch();
    specRasStack = archRasStack;
}

double
PredictorBank::storageBytes() const
{
    return tagePred.storageBytes() + ittagePred.storageBytes() +
           l0Ind.storageBytes() + specRasStack.storageBytes();
}

} // namespace elfsim
