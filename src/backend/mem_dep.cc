#include "backend/mem_dep.hh"

namespace elfsim {

MemDepPredictor::MemDepPredictor(unsigned entries, unsigned max_uses)
    : table(entries), maxUses(max_uses)
{
}

Addr
MemDepPredictor::storeFor(Addr load_pc)
{
    Entry &e = table[index(load_pc)];
    if (e.loadPC != load_pc)
        return invalidAddr;
    if (++e.uses > maxUses) {
        e = Entry{};
        return invalidAddr;
    }
    return e.storePC;
}

void
MemDepPredictor::train(Addr load_pc, Addr store_pc)
{
    Entry &e = table[index(load_pc)];
    e.loadPC = load_pc;
    e.storePC = store_pc;
    e.uses = 0;
    ++trainCount;
}

void
MemDepPredictor::reset()
{
    for (Entry &e : table)
        e = Entry{};
}

} // namespace elfsim
