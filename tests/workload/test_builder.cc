#include <gtest/gtest.h>

#include "workload/builders.hh"
#include "workload/program_builder.hh"

using namespace elfsim;

TEST(ProgramBuilder, ContiguousLayout)
{
    ProgramBuilder b;
    const auto b0 = b.beginBlock();
    b.addFiller(3);
    b.endJump(b0);
    Program p = b.finalize("t");
    EXPECT_EQ(p.footprintInsts(), 4u);
    EXPECT_EQ(p.codeBase(), defaultCodeBase);
    for (InstCount i = 0; i < 4; ++i) {
        const StaticInst *si = p.instAt(p.codeBase() + instsToBytes(i));
        ASSERT_NE(si, nullptr);
        EXPECT_EQ(si->pc, p.codeBase() + instsToBytes(i));
    }
}

TEST(ProgramBuilder, TerminatorKindsAndTargets)
{
    ProgramBuilder b;
    const auto b0 = b.beginBlock(); // cond -> b2
    b.addFiller(1);
    CondSpec c;
    b.endCond(c, 2);
    b.beginBlock(); // b1: jump -> b0
    b.endJump(b0);
    b.beginBlock(); // b2: call -> b3
    b.endCall(3);
    b.beginBlock(); // b3: return
    b.endReturn();
    Program p = b.finalize("t");

    const auto &insts = p.instructions();
    ASSERT_EQ(insts.size(), 5u);
    EXPECT_EQ(insts[1].branch, BranchKind::CondDirect);
    // b2 starts at instruction index 3.
    EXPECT_EQ(insts[1].directTarget, p.codeBase() + instsToBytes(3));
    EXPECT_EQ(insts[2].branch, BranchKind::UncondDirect);
    EXPECT_EQ(insts[2].directTarget, p.codeBase());
    EXPECT_EQ(insts[3].branch, BranchKind::DirectCall);
    EXPECT_EQ(insts[3].directTarget, p.codeBase() + instsToBytes(4));
    EXPECT_EQ(insts[4].branch, BranchKind::Return);
}

TEST(ProgramBuilder, IndirectTargetsResolved)
{
    ProgramBuilder b;
    b.beginBlock();
    IndirectSpec spec;
    spec.kind = IndirectKind::RoundRobin;
    b.endIndirectJump(spec, {1, 2});
    b.beginBlock();
    b.endJump(0);
    b.beginBlock();
    b.endJump(0);
    Program p = b.finalize("t");

    const StaticInst &ind = p.instructions()[0];
    EXPECT_EQ(ind.branch, BranchKind::IndirectJump);
    const IndirectSpec &s = p.behaviors().indirect(ind.behavior);
    ASSERT_EQ(s.targets.size(), 2u);
    EXPECT_EQ(s.targets[0], p.codeBase() + instsToBytes(1));
    EXPECT_EQ(s.targets[1], p.codeBase() + instsToBytes(2));
}

TEST(ProgramBuilder, UnmappedLookupsReturnNull)
{
    ProgramBuilder b;
    b.beginBlock();
    b.endJump(0);
    Program p = b.finalize("t");
    EXPECT_EQ(p.instAt(p.codeBase() - instBytes), nullptr);
    EXPECT_EQ(p.instAt(p.codeLimit()), nullptr);
    EXPECT_EQ(p.instAt(p.codeBase() + 2), nullptr); // misaligned
}

TEST(ProgramBuilder, FallthroughBlocksEmitNoBranch)
{
    ProgramBuilder b;
    b.beginBlock();
    b.addFiller(2);
    b.endFallthrough();
    b.beginBlock();
    b.endJump(0);
    Program p = b.finalize("t");
    ASSERT_EQ(p.footprintInsts(), 3u);
    EXPECT_FALSE(p.instructions()[0].isBranchInst());
    EXPECT_FALSE(p.instructions()[1].isBranchInst());
    EXPECT_TRUE(p.instructions()[2].isBranchInst());
}

TEST(ProgramBuilder, BlockTableCoversImage)
{
    ProgramBuilder b;
    b.beginBlock();
    b.addFiller(5);
    b.endFallthrough();
    b.beginBlock();
    b.addFiller(2);
    b.endJump(0);
    Program p = b.finalize("t");
    ASSERT_EQ(p.blocks().size(), 2u);
    EXPECT_EQ(p.blocks()[0].firstInst, 0u);
    EXPECT_EQ(p.blocks()[0].numInsts, 5u);
    EXPECT_EQ(p.blocks()[1].firstInst, 5u);
    EXPECT_EQ(p.blocks()[1].numInsts, 3u);
}

TEST(GenerateCfg, ProducesConnectedNonTrivialProgram)
{
    CfgParams params;
    Program p = generateCfg(params, 42, "gen");
    EXPECT_GT(p.footprintInsts(), 200u);
    // Every direct branch target must be inside the image.
    for (const StaticInst &si : p.instructions()) {
        if (si.isBranchInst() && isDirect(si.branch)) {
            EXPECT_TRUE(p.contains(si.directTarget))
                << si.disasm();
        }
        if (si.isBranchInst() && isIndirect(si.branch) &&
            si.branch != BranchKind::Return) {
            for (Addr t : p.behaviors().indirect(si.behavior).targets)
                EXPECT_TRUE(p.contains(t));
        }
    }
}

TEST(GenerateCfg, DeterministicForSameSeed)
{
    CfgParams params;
    Program a = generateCfg(params, 7, "a");
    Program b = generateCfg(params, 7, "b");
    ASSERT_EQ(a.footprintInsts(), b.footprintInsts());
    for (std::size_t i = 0; i < a.instructions().size(); ++i) {
        EXPECT_EQ(a.instructions()[i].cls, b.instructions()[i].cls);
        EXPECT_EQ(a.instructions()[i].branch,
                  b.instructions()[i].branch);
    }
}

TEST(GenerateCfg, FootprintScalesWithFunctions)
{
    CfgParams small, big;
    small.numFuncs = 8;
    big.numFuncs = 128;
    Program ps = generateCfg(small, 3, "s");
    Program pb = generateCfg(big, 3, "b");
    EXPECT_GT(pb.footprintInsts(), 4 * ps.footprintInsts());
}

TEST(MicroPrograms, ShapesAreAsAdvertised)
{
    Program chain = microTakenChain(8, 4);
    unsigned jumps = 0;
    for (const StaticInst &si : chain.instructions())
        jumps += si.branch == BranchKind::UncondDirect ? 1 : 0;
    EXPECT_EQ(jumps, 8u);

    Program rec = microRecursion(8, 4);
    unsigned calls = 0, rets = 0;
    for (const StaticInst &si : rec.instructions()) {
        calls += isCall(si.branch) ? 1 : 0;
        rets += isReturn(si.branch) ? 1 : 0;
    }
    EXPECT_EQ(calls, 2u);
    EXPECT_EQ(rets, 1u);

    Program ind = microIndirect(4, IndirectKind::RoundRobin, 3);
    unsigned indirects = 0;
    for (const StaticInst &si : ind.instructions())
        indirects += si.branch == BranchKind::IndirectJump ? 1 : 0;
    EXPECT_EQ(indirects, 1u);
}
