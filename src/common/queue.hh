/**
 * @file
 * Fixed-capacity FIFO queue used for pipeline decoupling structures
 * (FAQ, fetch buffers, checkpoint queues).
 */

#ifndef ELFSIM_COMMON_QUEUE_HH
#define ELFSIM_COMMON_QUEUE_HH

#include <cstddef>
#include <utility>
#include <vector>

#include "common/logging.hh"

namespace elfsim {

/**
 * Bounded circular FIFO. Indexable from front (0 = oldest) to support
 * structures like the FAQ where the fetcher peeks at the head while
 * prefetch scans older-to-younger.
 */
template <typename T>
class BoundedQueue
{
  public:
    explicit BoundedQueue(std::size_t capacity)
        : buf(capacity), cap(capacity)
    {
        ELFSIM_ASSERT(capacity > 0, "queue capacity must be non-zero");
    }

    bool empty() const { return count == 0; }
    bool full() const { return count == cap; }
    std::size_t size() const { return count; }
    std::size_t capacity() const { return cap; }
    std::size_t freeSlots() const { return cap - count; }

    /** Push a new youngest element. Queue must not be full. */
    void
    push(T v)
    {
        ELFSIM_ASSERT(!full(), "push to full queue");
        buf[(head + count) % cap] = std::move(v);
        ++count;
    }

    /** Pop and return the oldest element. Queue must not be empty. */
    T
    pop()
    {
        ELFSIM_ASSERT(!empty(), "pop from empty queue");
        T v = std::move(buf[head]);
        head = (head + 1) % cap;
        --count;
        return v;
    }

    /** Oldest element. */
    T &front() { ELFSIM_ASSERT(!empty(), "front of empty"); return buf[head]; }
    const T &
    front() const
    {
        ELFSIM_ASSERT(!empty(), "front of empty");
        return buf[head];
    }

    /** Youngest element. */
    T &
    back()
    {
        ELFSIM_ASSERT(!empty(), "back of empty");
        return buf[(head + count - 1) % cap];
    }

    /** Element i positions from the front (0 = oldest). */
    T &
    at(std::size_t i)
    {
        ELFSIM_ASSERT(i < count, "queue index out of range");
        return buf[(head + i) % cap];
    }
    const T &
    at(std::size_t i) const
    {
        ELFSIM_ASSERT(i < count, "queue index out of range");
        return buf[(head + i) % cap];
    }

    /** Remove all elements. */
    void
    clear()
    {
        head = 0;
        count = 0;
    }

    /** Drop the youngest n elements (used on pipeline squash). */
    void
    popBack(std::size_t n)
    {
        ELFSIM_ASSERT(n <= count, "popBack more than size");
        count -= n;
    }

  private:
    std::vector<T> buf;
    std::size_t cap;
    std::size_t head = 0;
    std::size_t count = 0;
};

} // namespace elfsim

#endif // ELFSIM_COMMON_QUEUE_HH
