#include <gtest/gtest.h>

#include "core/divergence.hh"
#include "isa/static_inst.hh"

using namespace elfsim;

namespace {

/** Build a static branch instruction for record construction. */
StaticInst
makeBranch(Addr pc, BranchKind kind, Addr target = 0x9000)
{
    StaticInst si;
    si.pc = pc;
    si.cls = kind == BranchKind::None ? InstClass::IntAlu
                                      : InstClass::Branch;
    si.branch = kind;
    si.directTarget = target;
    return si;
}

DynInst
makeCoupled(const StaticInst *si, SeqNum seq, bool has_pred,
            bool pred_taken, Addr target)
{
    DynInst di;
    di.si = si;
    di.seq = seq;
    di.oracleIdx = seq;
    di.mode = FetchMode::Coupled;
    di.hasPrediction = has_pred;
    di.predTaken = pred_taken;
    di.predTarget = target;
    return di;
}

} // namespace

class DivergenceTest : public ::testing::Test
{
  protected:
    DivergenceTracker t;
    std::vector<Divergence> adoptions;
    // Static insts must outlive the records.
    StaticInst alu = makeBranch(0x1000, BranchKind::None);
    StaticInst cond = makeBranch(0x1004, BranchKind::CondDirect, 0x2000);
    StaticInst jump = makeBranch(0x1008, BranchKind::UncondDirect,
                                 0x3000);
    StaticInst ind = makeBranch(0x100c, BranchKind::IndirectJump);
};

TEST_F(DivergenceTest, MatchingStreamsConsume)
{
    t.recordCoupled(makeCoupled(&alu, 1, false, false, invalidAddr));
    t.recordCoupled(makeCoupled(&cond, 2, true, true, 0x2000));
    t.recordDecoupled(false, false, BranchKind::None, 0x1000, 0x1004);
    t.recordDecoupled(true, true, BranchKind::CondDirect, 0x1004,
                      0x2000);
    EXPECT_FALSE(t.compare(adoptions).has_value());
    EXPECT_TRUE(adoptions.empty());
    EXPECT_EQ(t.coupledSpace(), 64u);
}

TEST_F(DivergenceTest, BranchBitOnlyMismatchIsNotDivergence)
{
    // Fetcher decoded a not-taken branch; the DCF saw a non-branch:
    // both continue sequentially, no flush.
    t.recordCoupled(makeCoupled(&cond, 1, true, false, 0x1008));
    t.recordDecoupled(false, false, BranchKind::None, 0x1004, 0x1008);
    EXPECT_FALSE(t.compare(adoptions).has_value());
}

TEST_F(DivergenceTest, UncondThroughBtbMissTrustsFetcher)
{
    // Paper IV-C2 case 1: the DCF sequentially guessed through an
    // unconditional branch.
    t.recordCoupled(makeCoupled(&jump, 5, true, true, 0x3000));
    t.recordDecoupled(false, false, BranchKind::None, 0x1008, 0x100c);
    const auto div = t.compare(adoptions);
    ASSERT_TRUE(div.has_value());
    EXPECT_EQ(div->verdict, DivergenceVerdict::TrustFetcher);
    EXPECT_EQ(div->continuation, 0x3000u);
    EXPECT_EQ(div->survivorSeq, 5u);
}

TEST_F(DivergenceTest, ConditionalDisagreementTrustsDcf)
{
    // Coupled bimodal predicted taken, DCF (TAGE) predicted not.
    t.recordCoupled(makeCoupled(&cond, 7, true, true, 0x2000));
    TagePrediction tp;
    tp.valid = true;
    tp.taken = false;
    t.recordDecoupled(true, false, BranchKind::CondDirect, 0x1004,
                      0x1008, tp);
    const auto div = t.compare(adoptions);
    ASSERT_TRUE(div.has_value());
    EXPECT_EQ(div->verdict, DivergenceVerdict::TrustDcf);
    EXPECT_EQ(div->continuation, 0x1008u);
    EXPECT_TRUE(div->patchSurvivor);
    EXPECT_FALSE(div->patchTaken);
    EXPECT_TRUE(div->patchTage.valid);
}

TEST_F(DivergenceTest, DirectTargetMismatchTrustsFetcher)
{
    // Both taken, targets differ, direct branch: the decoded target
    // wins (self-modifying-code rule).
    t.recordCoupled(makeCoupled(&jump, 9, true, true, 0x3000));
    t.recordDecoupled(true, true, BranchKind::UncondDirect, 0x1008,
                      0x4000);
    const auto div = t.compare(adoptions);
    ASSERT_TRUE(div.has_value());
    EXPECT_TRUE(div->targetMismatch);
    EXPECT_EQ(div->verdict, DivergenceVerdict::TrustFetcher);
    EXPECT_EQ(div->continuation, 0x3000u);
}

TEST_F(DivergenceTest, IndirectTargetMismatchTrustsDcf)
{
    t.recordCoupled(makeCoupled(&ind, 11, true, true, 0x3000));
    t.recordDecoupled(true, true, BranchKind::IndirectJump, 0x100c,
                      0x5000);
    const auto div = t.compare(adoptions);
    ASSERT_TRUE(div.has_value());
    EXPECT_TRUE(div->targetMismatch);
    EXPECT_EQ(div->verdict, DivergenceVerdict::TrustDcf);
    EXPECT_EQ(div->continuation, 0x5000u);
}

TEST_F(DivergenceTest, StalledBranchAdoptsDcfPrediction)
{
    DynInst di = makeCoupled(&cond, 13, false, false, 0x1008);
    di.fetchStalled = true;
    t.recordCoupled(di);
    TagePrediction tp;
    tp.valid = true;
    tp.taken = true;
    t.recordDecoupled(true, true, BranchKind::CondDirect, 0x1004,
                      0x2000, tp);
    EXPECT_FALSE(t.compare(adoptions).has_value());
    ASSERT_EQ(adoptions.size(), 1u);
    EXPECT_EQ(adoptions[0].survivorSeq, 13u);
    EXPECT_TRUE(adoptions[0].patchTaken);
    EXPECT_EQ(adoptions[0].patchTarget, 0x2000u);
    EXPECT_TRUE(adoptions[0].patchFromSlot);
}

TEST_F(DivergenceTest, StaleBtbBranchTrustsDecodedInstruction)
{
    // Self-modifying-code rule (paper IV-C2 case 2): the DCF predicts
    // a taken branch where decode found a non-branch — the decoded
    // instruction is authoritative.
    t.recordCoupled(makeCoupled(&alu, 15, false, false, invalidAddr));
    t.recordDecoupled(true, true, BranchKind::UncondDirect, 0x1000,
                      0x7000);
    const auto div = t.compare(adoptions);
    ASSERT_TRUE(div.has_value());
    EXPECT_EQ(div->verdict, DivergenceVerdict::TrustFetcher);
    EXPECT_EQ(div->continuation, 0x1004u); // sequential continuation
}

TEST_F(DivergenceTest, PositionalMisalignmentTrustsFetcher)
{
    // Records whose PCs differ mean the streams are misaligned (the
    // DCF guessed through a taken branch): the fetcher's real
    // instructions win and the DCF restarts.
    t.recordCoupled(makeCoupled(&cond, 17, true, false, 0x1008));
    t.recordDecoupled(false, false, BranchKind::None, 0x5550, 0x5554);
    const auto div = t.compare(adoptions);
    ASSERT_TRUE(div.has_value());
    EXPECT_EQ(div->verdict, DivergenceVerdict::TrustFetcher);
    EXPECT_EQ(div->survivorSeq, 17u);
}

TEST_F(DivergenceTest, CoupledSpaceShrinksAndResets)
{
    for (int i = 0; i < 10; ++i)
        t.recordCoupled(makeCoupled(&alu, 20 + i, false, false, 0));
    EXPECT_EQ(t.coupledSpace(), 54u);
    t.reset();
    EXPECT_EQ(t.coupledSpace(), 64u);
}

TEST_F(DivergenceTest, TakenTargetQueueLimitGatesSpace)
{
    // 16 in-flight taken branches exhaust the target queues even if
    // the bitvectors still have room.
    for (int i = 0; i < 16; ++i)
        t.recordCoupled(makeCoupled(&jump, 40 + i, true, true, 0x3000));
    EXPECT_EQ(t.coupledSpace(), 0u);
}
