/**
 * @file
 * One-shot simulation driver: builds a core for a (workload, variant)
 * pair, runs warmup + measurement, and collects the metrics every
 * experiment consumes.
 */

#ifndef ELFSIM_SIM_RUNNER_HH
#define ELFSIM_SIM_RUNNER_HH

#include <string>

#include "sim/core.hh"

namespace elfsim {

/** Aggregated results of one simulation run (measurement window). */
struct RunResult
{
    std::string workload;
    std::string variant;

    Cycle cycles = 0;
    InstCount insts = 0;
    double ipc = 0;

    double branchMpki = 0;       ///< direction + target, per kilo-inst
    double condMpki = 0;
    std::uint64_t execFlushes = 0;
    std::uint64_t memOrderFlushes = 0;
    std::uint64_t decodeResteers = 0;
    std::uint64_t divergenceFlushes = 0;

    double btbHitL0 = 0;         ///< cumulative per-level hit rates
    double btbHitL1 = 0;
    double btbHitL2 = 0;

    double l0iMissRate = 0;
    double l1dMpki = 0;

    std::uint64_t wrongPathInsts = 0;
    std::uint64_t instPrefetches = 0;

    // ELF-specific
    double avgCoupledInsts = 0;  ///< per coupled period (Figure 8)
    std::uint64_t coupledPeriods = 0;
    double coupledCommittedFrac = 0;
    std::uint64_t pendingFlushWaits = 0;
};

/** Options for a run. */
struct RunOptions
{
    InstCount warmupInsts = 100000;
    InstCount measureInsts = 500000;
};

/**
 * Point-in-time capture of the core counters that runSimulation
 * reports as deltas across the measurement window. Usage: capture()
 * after warmup, run the measurement window, then delta() against a
 * fresh capture.
 */
struct StatSnapshot
{
    Cycle cycles = 0;
    InstCount insts = 0;
    std::uint64_t condMispredicts = 0;
    std::uint64_t targetMispredicts = 0;
    std::uint64_t execFlushes = 0;
    std::uint64_t memOrderFlushes = 0;
    std::uint64_t decodeResteers = 0;
    std::uint64_t divergenceFlushes = 0;
    std::uint64_t coupledCommitted = 0;
    std::uint64_t l1dMisses = 0;

    /** Read every windowed counter off the core. */
    static StatSnapshot capture(const Core &core);

    /** Elementwise `*this - since` (the measurement-window deltas). */
    StatSnapshot delta(const StatSnapshot &since) const;
};

/** Build the program's core and run warmup + measurement. */
RunResult runSimulation(const Program &prog, const SimConfig &cfg,
                        const RunOptions &opts = {});

/** Convenience: run a named variant on a program. */
RunResult runVariant(const Program &prog, FrontendVariant variant,
                     const RunOptions &opts = {});

/** Geometric mean of relative IPCs (paper Figure 9). */
double geomean(const std::vector<double> &xs);

} // namespace elfsim

#endif // ELFSIM_SIM_RUNNER_HH
