#include <gtest/gtest.h>

#include "sim/runner.hh"
#include "workload/builders.hh"

using namespace elfsim;

namespace {

Program
branchy()
{
    CfgParams p;
    p.numFuncs = 12;
    p.randomTakenProb = 0.35;
    p.dataFootprint = 64 << 10;
    return generateCfg(p, 0xabc, "ext_branchy");
}

} // namespace

TEST(Extensions, GshareCoupledPredictorRuns)
{
    Program p = branchy();
    SimConfig cfg = makeConfig(FrontendVariant::UElf);
    cfg.coupledPreds.condKind = CoupledCondKind::Gshare;
    Core core(cfg, p);
    core.run(40000);
    EXPECT_GE(core.committed(), 40000u);
    // Storage budget stays in the paper's < 2KB envelope.
    EXPECT_LT(core.elf().stats().coupledPeriods, core.cycles());
}

TEST(Extensions, GshareKeepsArchitecturalStream)
{
    // The coupled predictor choice is timing-only.
    Program p = branchy();
    SimConfig a = makeConfig(FrontendVariant::UElf);
    SimConfig b = a;
    b.coupledPreds.condKind = CoupledCondKind::Gshare;

    std::vector<Addr> sa, sb;
    {
        Core core(a, p);
        core.setCommitObserver([&](const DynInst &di) {
            if (sa.size() < 20000)
                sa.push_back(di.pc());
        });
        core.run(20000);
    }
    {
        Core core(b, p);
        core.setCommitObserver([&](const DynInst &di) {
            if (sb.size() < 20000)
                sb.push_back(di.pc());
        });
        core.run(20000);
    }
    EXPECT_EQ(sa, sb);
}

TEST(Extensions, DecodeBtbFillReducesResteers)
{
    // A footprint far beyond the BTB forces misfetch recoveries; the
    // Boomerang-style prefill must reduce repeat offenders.
    CfgParams p;
    p.numFuncs = 700;
    p.blocksPerFunc = 10;
    p.callBlockProb = 0.4;
    p.callSkew = 0.05;
    p.dataFootprint = 64 << 10;
    Program prog = generateCfg(p, 0x600d, "ext_bigcode");

    SimConfig base = makeConfig(FrontendVariant::Dcf);
    SimConfig fill = base;
    fill.decodeBtbFill = true;

    Core a(base, prog);
    a.run(120000);
    Core b(fill, prog);
    b.run(120000);
    EXPECT_LT(b.stats().decodeResteers, a.stats().decodeResteers);
    // And it must never hurt the architectural result.
    EXPECT_GE(b.committed(), 120000u);
}

TEST(Extensions, DecodeBtbFillRunsUnderElf)
{
    Program p = branchy();
    SimConfig cfg = makeConfig(FrontendVariant::UElf);
    cfg.decodeBtbFill = true;
    Core core(cfg, p);
    core.run(30000);
    EXPECT_GE(core.committed(), 30000u);
}
