/**
 * @file
 * Shared plumbing for the experiment harnesses: option parsing and
 * table formatting. Each bench binary regenerates one table or figure
 * of the paper; rows print as aligned text so paper-vs-measured
 * comparison (EXPERIMENTS.md) is a copy-paste.
 */

#ifndef ELFSIM_BENCH_BENCH_UTIL_HH
#define ELFSIM_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstring>
#include <string>

#include "sim/runner.hh"
#include "workload/catalog.hh"

namespace elfsim {
namespace bench {

/** Common command-line options. */
struct Options
{
    InstCount warmupInsts = 100000;
    InstCount measureInsts = 200000;
    bool quick = false;

    RunOptions
    runOptions() const
    {
        RunOptions o;
        o.warmupInsts = quick ? warmupInsts / 4 : warmupInsts;
        o.measureInsts = quick ? measureInsts / 4 : measureInsts;
        return o;
    }
};

/** Parse --warmup N / --insts N / --quick. */
inline Options
parseOptions(int argc, char **argv)
{
    Options o;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--warmup") && i + 1 < argc)
            o.warmupInsts = std::strtoull(argv[++i], nullptr, 10);
        else if (!std::strcmp(argv[i], "--insts") && i + 1 < argc)
            o.measureInsts = std::strtoull(argv[++i], nullptr, 10);
        else if (!std::strcmp(argv[i], "--quick"))
            o.quick = true;
    }
    return o;
}

/** Print the experiment banner. */
inline void
banner(const char *experiment, const char *caption)
{
    std::printf("==================================================="
                "=========================\n");
    std::printf("%s\n  %s\n", experiment, caption);
    std::printf("==================================================="
                "=========================\n");
}

} // namespace bench
} // namespace elfsim

#endif // ELFSIM_BENCH_BENCH_UTIL_HH
