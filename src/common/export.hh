/**
 * @file
 * Machine-readable output sinks: a streaming JSON writer and a CSV
 * writer, plus StatGroup serialization built on the stats visitation
 * API. Everything the simulator prints as text can also leave through
 * these, losslessly: doubles are formatted with shortest-round-trip
 * precision, so re-parsing an export reproduces the exact bits and a
 * deterministic computation serializes to byte-identical output.
 */

#ifndef ELFSIM_COMMON_EXPORT_HH
#define ELFSIM_COMMON_EXPORT_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "common/stats.hh"

namespace elfsim {

/** Format a double with shortest round-trip precision ("null" for
 *  non-finite values, which JSON cannot represent). */
std::string formatDouble(double v);

/**
 * Minimal streaming JSON emitter (objects, arrays, keyed fields) with
 * two-space pretty-printing, or single-line compact output for JSONL
 * sinks (the sweep resume manifest). Purely append-only: the caller
 * provides a well-formed begin/key/value/end sequence; nesting depth
 * is tracked only for commas and indentation.
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os, bool pretty = true)
        : out(os), pretty(pretty)
    {
    }

    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Emit the key of the next field (inside an object). */
    JsonWriter &key(std::string_view k);

    JsonWriter &value(std::string_view v);
    JsonWriter &value(const char *v) { return value(std::string_view(v)); }
    JsonWriter &value(double v);
    JsonWriter &value(std::uint64_t v);
    JsonWriter &value(bool v);
    JsonWriter &null();

    JsonWriter &field(std::string_view k, std::string_view v)
    { key(k); return value(v); }
    JsonWriter &field(std::string_view k, const char *v)
    { key(k); return value(std::string_view(v)); }
    JsonWriter &field(std::string_view k, double v)
    { key(k); return value(v); }
    JsonWriter &field(std::string_view k, std::uint64_t v)
    { key(k); return value(v); }
    JsonWriter &field(std::string_view k, bool v)
    { key(k); return value(v); }

  private:
    void sep();
    void indent();
    void close(char c);
    void writeString(std::string_view s);

    std::ostream &out;
    bool pretty;
    struct Level { bool first; };
    std::vector<Level> stack;
    bool afterKey = false;
};

/** Minimal CSV writer (RFC-4180 quoting, one row at a time). */
class CsvWriter
{
  public:
    explicit CsvWriter(std::ostream &os) : out(os) {}

    CsvWriter &cell(std::string_view v);
    CsvWriter &cell(const char *v) { return cell(std::string_view(v)); }
    CsvWriter &cell(double v);
    CsvWriter &cell(std::uint64_t v);
    void endRow();

  private:
    std::ostream &out;
    bool firstCell = true;
};

namespace stats {

/**
 * Serialize a StatGroup as one JSON object keyed by stat name.
 * Counters and formulas become numbers; distributions become
 * {"mean","samples","sum","min","max"} objects — lossless.
 */
void writeJson(JsonWriter &w, const StatGroup &g);

/** Append a StatGroup as CSV rows: name,kind,value[,samples,sum,min,max]. */
void writeCsv(CsvWriter &w, const StatGroup &g);

} // namespace stats
} // namespace elfsim

#endif // ELFSIM_COMMON_EXPORT_HH
