#include "isa/static_inst.hh"

#include <sstream>

namespace elfsim {

const char *
instClassName(InstClass c)
{
    switch (c) {
      case InstClass::IntAlu: return "alu";
      case InstClass::IntMul: return "mul";
      case InstClass::IntDiv: return "div";
      case InstClass::FloatOp: return "fp";
      case InstClass::Load: return "ld";
      case InstClass::Store: return "st";
      case InstClass::Branch: return "br";
      case InstClass::Nop: return "nop";
    }
    return "?";
}

const char *
branchKindName(BranchKind k)
{
    switch (k) {
      case BranchKind::None: return "none";
      case BranchKind::CondDirect: return "b.cond";
      case BranchKind::UncondDirect: return "b";
      case BranchKind::DirectCall: return "bl";
      case BranchKind::IndirectJump: return "br-reg";
      case BranchKind::IndirectCall: return "blr";
      case BranchKind::Return: return "ret";
    }
    return "?";
}

std::string
StaticInst::disasm() const
{
    std::ostringstream os;
    os << std::hex << "0x" << pc << std::dec << ": ";
    if (isBranchInst()) {
        os << branchKindName(branch);
        if (isDirect(branch))
            os << " -> 0x" << std::hex << directTarget << std::dec;
    } else {
        os << instClassName(cls);
        if (destReg != numArchRegs)
            os << " r" << destReg;
        for (auto s : srcRegs) {
            if (s != numArchRegs)
                os << ", r" << s;
        }
    }
    return os.str();
}

} // namespace elfsim
