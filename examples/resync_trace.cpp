/**
 * @file
 * Resynchronization trace — a live walk through the paper's Figure 5.
 *
 * Runs U-ELF on a small branchy loop and, around the first few
 * pipeline flushes, prints the controller's mode and the three
 * resynchronization counts each cycle:
 *
 *   - Fetch Coupled Count  (speculative; instructions fetched while
 *     coupled)
 *   - Decode Coupled Count (non-speculative; coupled instructions
 *     through decode)
 *   - Decoupled Count      (instructions covered by consumed FAQ
 *     blocks)
 *
 * Watch for: a flush enters Coupled mode; the counts climb; when the
 * FAQ coverage reaches the Fetch Coupled Count the controller
 * switches back to Decoupled (the Figure 5 rule); the counts reset
 * once the last coupled instructions drain through decode.
 *
 *   $ ./resync_trace
 */

#include <cstdio>

#include "sim/core.hh"
#include "workload/builders.hh"

using namespace elfsim;

int
main()
{
    Program p = microRandomBranchLoop(10, 0.4);
    SimConfig cfg = makeConfig(FrontendVariant::UElf);
    Core core(cfg, p);

    // Let the predictors and BTB warm up first.
    core.run(50000);

    std::printf("%-8s %-10s %6s %6s %6s %6s\n", "cycle", "mode",
                "FCC", "DCC", "DC", "drain");

    FetchMode lastMode = core.elf().mode();
    unsigned periodsShown = 0;
    Cycle printUntil = 0;

    while (periodsShown < 3 && core.cycles() < 200000) {
        core.tick();
        const ElfController &elf = core.elf();

        if (elf.mode() != lastMode) {
            if (elf.mode() == FetchMode::Coupled) {
                std::printf("---- flush: entering COUPLED mode at the "
                            "corrected PC ----\n");
                printUntil = core.cycles() + 24;
                ++periodsShown;
            } else {
                std::printf("---- resync: FAQ coverage caught up; "
                            "back to DECOUPLED ----\n");
            }
            lastMode = elf.mode();
        }

        if (core.cycles() <= printUntil) {
            std::printf("%-8llu %-10s %6llu %6llu %6llu %6s\n",
                        (unsigned long long)core.cycles(),
                        elf.mode() == FetchMode::Coupled ? "Coupled"
                                                         : "Decoupled",
                        (unsigned long long)elf.fetchCoupled(),
                        (unsigned long long)elf.decodeCoupled(),
                        (unsigned long long)elf.decoupled(),
                        elf.drainingCoupled() ? "yes" : "");
        }
    }

    const ElfStats &st = core.elf().stats();
    std::printf("\nsummary: %llu coupled periods, %llu resyncs, "
                "%.1f insts fetched per coupled period\n",
                (unsigned long long)st.coupledPeriods,
                (unsigned long long)st.switches,
                st.avgCoupledInstsPerPeriod());
    return 0;
}
