/**
 * @file
 * Whole-core configuration (defaults reproduce the paper's Table II
 * baseline) and its report printer.
 */

#ifndef ELFSIM_SIM_CONFIG_HH
#define ELFSIM_SIM_CONFIG_HH

#include <ostream>

#include "backend/backend.hh"
#include "bpred/predictor_bank.hh"
#include "btb/btb.hh"
#include "cache/hierarchy.hh"
#include "core/elf_controller.hh"

namespace elfsim {

/** Full simulator configuration. */
struct SimConfig
{
    FrontendVariant variant = FrontendVariant::Dcf;

    FetchParams fetch{};             ///< 8-wide, FE->DEC = 1
    Cycle bp1ToFe = 3;               ///< BP1/BP2/FAQ depth
    unsigned faqEntries = 32;
    unsigned checkpointEntries = 512;
    unsigned fetchBufferEntries = 24;
    unsigned maxInstPrefetch = 4;

    MemHierarchyParams mem{};
    PredictorBankParams preds{};
    MultiBtbParams btb{};
    BackendParams backend{};
    DivergenceParams divergence{};
    CoupledPredictorParams coupledPreds{};
    PayloadPolicy payloadPolicy = PayloadPolicy::FaqFill;
    bool condElfRequireSaturation = true;

    /**
     * Per-run RNG seed. 0 (the default) keeps the predictors' legacy
     * fixed allocation seeds, so existing single-run results are
     * unchanged. A sweep stamps a deterministic per-job value here
     * (derived from the job's submission index, never from thread
     * identity) so replicated grid cells decorrelate reproducibly.
     */
    std::uint64_t rngSeed = 0;

    /**
     * Extension (paper Section VI-C points at Boomerang): on a
     * decode-time misfetch recovery, pre-fill the BTB for the
     * resteer target from pre-decoded instruction bytes, shortening
     * the next BTB-miss feedback loop. Off by default (not part of
     * the paper's baseline).
     */
    bool decodeBtbFill = false;

    /** Derive the front-end controller parameters. */
    ElfControllerParams
    elfParams() const
    {
        ElfControllerParams p;
        p.variant = variant;
        p.fetch = fetch;
        p.bp1ToFe = bp1ToFe;
        p.maxInstPrefetch = maxInstPrefetch;
        p.divergence = divergence;
        p.coupledPreds = coupledPreds;
        p.payloadPolicy = payloadPolicy;
        p.condRequireSaturation = condElfRequireSaturation;
        return p;
    }
};

/** Build a config for a given front-end variant (Table II elsewhere). */
SimConfig makeConfig(FrontendVariant variant);

/**
 * Content hash of every numeric/enum knob in @a cfg (names and other
 * cosmetic strings excluded). Two configs with the same fingerprint
 * build behaviourally identical cores; warm-state checkpoint keys
 * hash it so an artifact can never be restored into a differently
 * configured machine.
 */
std::uint64_t configFingerprint(const SimConfig &cfg);

/** Print the Table II-style configuration report. */
void printConfig(std::ostream &os, const SimConfig &cfg);

} // namespace elfsim

#endif // ELFSIM_SIM_CONFIG_HH
