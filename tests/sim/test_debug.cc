#include <gtest/gtest.h>

#include "sim/core.hh"
#include "workload/builders.hh"

using namespace elfsim;

TEST(Debug, DebugDumpDoesNotCrash)
{
    Program p = microRandomBranchLoop(8, 0.4);
    Core core(makeConfig(FrontendVariant::UElf), p);
    core.run(5000);
    // Smoke: the deadlock diagnostic must be callable at any point.
    core.debugDump();
    core.run(5000);
    core.debugDump();
}

TEST(Debug, HierarchyStatsDump)
{
    MemHierarchy mem;
    mem.dataAccess(0x400000, 0x10000000, false, 0);
    mem.instFetch(0x400000, 0);
    std::ostringstream os;
    mem.dumpStats(os);
    const std::string s = os.str();
    EXPECT_NE(s.find("l0i.misses"), std::string::npos);
    EXPECT_NE(s.find("l1d.hits"), std::string::npos);
    EXPECT_NE(s.find("mem.accesses"), std::string::npos);
}

TEST(Debug, BtbEntryNumSlots)
{
    BtbEntry e;
    EXPECT_EQ(e.numSlots(), 0u);
    e.slots[1].valid = true;
    EXPECT_EQ(e.numSlots(), 1u);
    EXPECT_EQ(btbTerminationName(BtbTermination::SlotPressure),
              std::string("slot-pressure"));
}
