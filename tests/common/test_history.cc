#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/history.hh"
#include "common/random.hh"

using namespace elfsim;

TEST(GlobalHistory, PushAndRead)
{
    GlobalHistory h(16);
    h.push(true);
    h.push(false);
    h.push(true);
    EXPECT_TRUE(h.bitAt(0));  // youngest
    EXPECT_FALSE(h.bitAt(1));
    EXPECT_TRUE(h.bitAt(2));
}

TEST(GlobalHistory, RestoreRewindsSpeculation)
{
    GlobalHistory h(32);
    h.push(true);
    h.push(true);
    const unsigned ckpt = h.pointer();
    h.push(false);
    h.push(false);
    h.restore(ckpt);
    EXPECT_TRUE(h.bitAt(0));
    EXPECT_TRUE(h.bitAt(1));
    // Pushing after restore overwrites the abandoned bits.
    h.push(false);
    EXPECT_FALSE(h.bitAt(0));
    EXPECT_TRUE(h.bitAt(1));
}

TEST(FoldedHistory, MatchesDirectFold)
{
    // Maintain a reference 12-bit history and check the folded value
    // equals XOR-folding it directly.
    const unsigned histLen = 12, foldLen = 5;
    FoldedHistory f(histLen, foldLen);
    std::vector<bool> ref;
    Rng rng(42);
    for (int i = 0; i < 200; ++i) {
        const bool nb = rng.chance(0.5);
        const bool ob =
            ref.size() >= histLen ? ref[ref.size() - histLen] : false;
        f.update(nb, ob);
        ref.push_back(nb);

        std::uint32_t expect = 0;
        // Fold the last histLen bits: bit j of history goes to
        // position (j % foldLen) where j counts from youngest.
        // Equivalent reference: replay the incremental algorithm.
        FoldedHistory g(histLen, foldLen);
        for (std::size_t k = 0; k < ref.size(); ++k) {
            const bool nk = ref[k];
            const bool ok = k >= histLen ? ref[k - histLen] : false;
            g.update(nk, ok);
        }
        expect = g.value();
        EXPECT_EQ(f.value(), expect);
    }
}

TEST(FoldedHistory, DifferentHistoriesDiffer)
{
    FoldedHistory a(20, 8), b(20, 8);
    for (int i = 0; i < 20; ++i) {
        a.update(i % 2 == 0, false);
        b.update(i % 3 == 0, false);
    }
    EXPECT_NE(a.value(), b.value());
}

TEST(FoldedHistory, RestoreRoundTrip)
{
    FoldedHistory f(16, 6);
    for (int i = 0; i < 10; ++i)
        f.update(i % 2 == 0, false);
    const std::uint32_t saved = f.value();
    f.update(true, false);
    f.restore(saved);
    EXPECT_EQ(f.value(), saved);
}
