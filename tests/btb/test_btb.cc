#include <gtest/gtest.h>

#include "btb/btb.hh"

using namespace elfsim;

namespace {

BtbEntry
makeEntry(Addr start, unsigned n = 16)
{
    BtbEntry e;
    e.valid = true;
    e.startPC = start;
    e.numInsts = static_cast<std::uint8_t>(n);
    e.termination = n == btbMaxInsts ? BtbTermination::MaxInsts
                                     : BtbTermination::SlotPressure;
    return e;
}

} // namespace

TEST(BtbEntry, FallthroughAndMaxTracking)
{
    BtbEntry e = makeEntry(0x400000, 16);
    EXPECT_EQ(e.fallthrough(), 0x400000u + 64);
    EXPECT_TRUE(e.tracksMaxInsts());
    BtbEntry s = makeEntry(0x400000, 10);
    EXPECT_EQ(s.fallthrough(), 0x400000u + 40);
    EXPECT_FALSE(s.tracksMaxInsts());
}

TEST(BtbEntry, TerminatingUncond)
{
    BtbEntry e = makeEntry(0x400000, 5);
    EXPECT_EQ(e.terminatingUncond(), nullptr);
    e.termination = BtbTermination::Unconditional;
    e.slots[0] = {true, 4, BranchKind::UncondDirect, 0x500000};
    ASSERT_NE(e.terminatingUncond(), nullptr);
    EXPECT_EQ(e.terminatingUncond()->target, 0x500000u);
}

TEST(BtbLevel, HitMissAndOverwrite)
{
    BtbLevel l({"l", 16, 4, 1});
    EXPECT_EQ(l.lookup(0x400000), nullptr);
    l.insert(makeEntry(0x400000, 16));
    const BtbEntry *e = l.lookup(0x400000);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->numInsts, 16);
    // Overwrite in place (amendment).
    l.insert(makeEntry(0x400000, 8));
    EXPECT_EQ(l.lookup(0x400000)->numInsts, 8);
}

TEST(BtbLevel, LruWithinSet)
{
    // 8 entries, 2-way: 4 sets. Entries with startPC stride of
    // 4 * instBytes map to the same set.
    BtbLevel l({"l", 8, 2, 1});
    const Addr a = 0x400000;
    const Addr b = a + instsToBytes(4);
    const Addr c = a + instsToBytes(8);
    l.insert(makeEntry(a));
    l.insert(makeEntry(b));
    l.lookup(a); // touch a; b is LRU
    l.insert(makeEntry(c));
    EXPECT_NE(l.lookup(a), nullptr);
    EXPECT_EQ(l.lookup(b), nullptr);
    EXPECT_NE(l.lookup(c), nullptr);
}

TEST(BtbLevel, FullyAssociative)
{
    BtbLevel l({"l0", 4, 0, 0});
    // Entries with wildly different PCs coexist up to capacity.
    for (unsigned i = 0; i < 4; ++i)
        l.insert(makeEntry(0x400000 + instsToBytes(100 * i)));
    for (unsigned i = 0; i < 4; ++i)
        EXPECT_NE(l.lookup(0x400000 + instsToBytes(100 * i)), nullptr);
    l.insert(makeEntry(0x900000));
    unsigned present = 0;
    for (unsigned i = 0; i < 4; ++i)
        present += l.lookup(0x400000 + instsToBytes(100 * i)) ? 1 : 0;
    EXPECT_EQ(present, 3u); // one victim evicted
}

TEST(MultiBtb, InsertGoesToL1AndL2NotL0)
{
    MultiBtb btb;
    btb.insert(makeEntry(0x400000));
    EXPECT_EQ(btb.level(0).lookup(0x400000), nullptr);
    EXPECT_NE(btb.level(1).lookup(0x400000), nullptr);
    EXPECT_NE(btb.level(2).lookup(0x400000), nullptr);
}

TEST(MultiBtb, LookupPromotesToInnerLevels)
{
    MultiBtb btb;
    btb.insert(makeEntry(0x400000));
    const BtbLookupResult r1 = btb.lookup(0x400000);
    EXPECT_TRUE(r1.hit);
    EXPECT_EQ(r1.level, 1);
    EXPECT_EQ(r1.latency, 1u);
    // Promoted into L0: next lookup is an L0 hit with 0 latency.
    const BtbLookupResult r0 = btb.lookup(0x400000);
    EXPECT_TRUE(r0.hit);
    EXPECT_EQ(r0.level, 0);
    EXPECT_EQ(r0.latency, 0u);
}

TEST(MultiBtb, MissReported)
{
    MultiBtb btb;
    const BtbLookupResult r = btb.lookup(0x400000);
    EXPECT_FALSE(r.hit);
    EXPECT_EQ(r.level, -1);
}

TEST(MultiBtb, CumulativeHitRates)
{
    MultiBtb btb;
    btb.insert(makeEntry(0x400000));
    btb.lookup(0x400000); // L1 hit
    btb.lookup(0x400000); // L0 hit
    btb.lookup(0x500000); // miss
    btb.lookup(0x500000); // miss
    EXPECT_DOUBLE_EQ(btb.cumulativeHitRate(0), 0.25);
    EXPECT_DOUBLE_EQ(btb.cumulativeHitRate(1), 0.5);
    EXPECT_DOUBLE_EQ(btb.cumulativeHitRate(2), 0.5);
}

TEST(MultiBtb, CapacityPressureEvictsL1BeforeL2)
{
    MultiBtb btb;
    // Insert far more entries than L1 (256) but fewer than L2 (4K).
    for (unsigned i = 0; i < 1024; ++i)
        btb.insert(makeEntry(0x400000 + instsToBytes(16 * i)));
    unsigned l1Hits = 0, l2Hits = 0;
    for (unsigned i = 0; i < 1024; ++i) {
        const Addr pc = 0x400000 + instsToBytes(16 * i);
        if (btb.level(1).lookup(pc))
            ++l1Hits;
        if (btb.level(2).lookup(pc))
            ++l2Hits;
    }
    EXPECT_LE(l1Hits, 256u);
    // The hashed set index spreads strided startPCs; a few bucket
    // overflows are acceptable, wholesale loss is not.
    EXPECT_GE(l2Hits, 1000u);
}
