/**
 * @file
 * The Table II memory hierarchy: L0I + L1I on the instruction side,
 * L1D on the data side, unified L2 and L3, fixed-latency memory, and
 * a stride prefetcher training on data accesses.
 */

#ifndef ELFSIM_CACHE_HIERARCHY_HH
#define ELFSIM_CACHE_HIERARCHY_HH

#include <memory>

#include "cache/cache.hh"
#include "cache/prefetch.hh"

namespace elfsim {

/** Parameters for the whole hierarchy (defaults = paper's Table II). */
struct MemHierarchyParams
{
    CacheParams l0i{"l0i", 24 * 1024, 3, 64, 1, 2};
    CacheParams l1i{"l1i", 64 * 1024, 8, 64, 3, 1};
    CacheParams l1d{"l1d", 32 * 1024, 8, 64, 3, 1};
    CacheParams l2{"l2", 512 * 1024, 8, 128, 13, 1};
    CacheParams l3{"l3", 16 * 1024 * 1024, 16, 128, 35, 1};
    Cycle memLatency = 250;
    bool dataPrefetch = true;
    StridePrefetcherParams stridePf{};
};

/** Owns and wires the cache levels. */
class MemHierarchy
{
  public:
    explicit MemHierarchy(const MemHierarchyParams &params = {});

    /**
     * Demand instruction fetch through L0I.
     * @return cycles until the instruction bytes are available.
     */
    Cycle
    instFetch(Addr addr, Cycle now)
    {
        return l0iCache->access(addr, false, now);
    }

    /**
     * Demand data access through L1D; trains the stride prefetcher.
     * @return cycles until the data is available (load-to-use).
     */
    Cycle dataAccess(Addr pc, Addr addr, bool write, Cycle now);

    /** FAQ-directed instruction prefetch into L0I (fills L1I/L2 too). */
    void
    prefetchInst(Addr addr, Cycle now)
    {
        l0iCache->prefetch(addr, now);
    }

    /** @return true iff the L0I holds @a addr ready at @a now. */
    bool
    l0iReady(Addr addr, Cycle now) const
    {
        return l0iCache->probe(addr, now);
    }

    Cache &l0i() { return *l0iCache; }
    Cache &l1i() { return *l1iCache; }
    Cache &l1d() { return *l1dCache; }
    Cache &l2() { return *l2Cache; }
    Cache &l3() { return *l3Cache; }
    const Cache &l0i() const { return *l0iCache; }
    const Cache &l1i() const { return *l1iCache; }
    const Cache &l1d() const { return *l1dCache; }
    const Cache &l2() const { return *l2Cache; }
    const Cache &l3() const { return *l3Cache; }
    FixedLatencyMemory &memory() { return *mem; }
    const FixedLatencyMemory &memory() const { return *mem; }
    StridePrefetcher *stridePrefetcher() { return dpf.get(); }
    const StridePrefetcher *stridePrefetcher() const { return dpf.get(); }

    /** Dump all level stats. */
    void dumpStats(std::ostream &os) const;

    /** Visit each level's StatGroup, innermost (L0I) first — the walk
     *  dumpStats and the machine-readable reporters share. */
    void forEachStatGroup(
        const std::function<void(const stats::StatGroup &)> &fn) const;

    /** Serialize every level plus prefetcher and memory counters. */
    void saveState(Serializer &s) const;
    void loadState(Deserializer &d);

  private:
    std::unique_ptr<FixedLatencyMemory> mem;
    std::unique_ptr<Cache> l3Cache;
    std::unique_ptr<Cache> l2Cache;
    std::unique_ptr<Cache> l1iCache;
    std::unique_ptr<Cache> l1dCache;
    std::unique_ptr<Cache> l0iCache;
    std::unique_ptr<StridePrefetcher> dpf;
};

} // namespace elfsim

#endif // ELFSIM_CACHE_HIERARCHY_HH
