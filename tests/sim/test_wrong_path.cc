#include <gtest/gtest.h>

#include "sim/core.hh"
#include "workload/builders.hh"
#include "workload/program_builder.hh"

using namespace elfsim;

// Wrong-path behaviour at the whole-core level: the front-end really
// fetches down mispredicted paths, and wrong-path loads really access
// (and pollute) the data hierarchy before being squashed.

TEST(WrongPath, MispredictionsFetchRealWrongPathInstructions)
{
    Program p = microRandomBranchLoop(8, 0.4);
    Core core(makeConfig(FrontendVariant::Dcf), p);
    core.run(60000);
    EXPECT_GT(core.supply().wrongPathInsts(), 1000u);
    EXPECT_GT(core.stats().execFlushes, 500u);
}

TEST(WrongPath, PredictableCodeFetchesAlmostNone)
{
    Program p = microSequentialLoop(30, 16);
    Core core(makeConfig(FrontendVariant::Dcf), p);
    core.run(60000);
    EXPECT_LT(core.supply().wrongPathInsts(),
              core.committed() / 20);
}

TEST(WrongPath, WrongPathLoadsAccessTheDataHierarchy)
{
    // A loop whose taken path has no loads but whose fall-through
    // (wrong) path is load-dense: with a 50/50 branch, wrong-path
    // fetches reach those loads and execute them speculatively.
    ProgramBuilder b;
    const auto head = b.beginBlock();
    b.addFiller(6);
    CondSpec c;
    c.kind = CondKind::TakenProb;
    c.takenProb = 1.0; // always taken: the fall-through never commits
    c.seed = 7;
    b.endCond(c, 2);
    b.beginBlock(); // fall-through: wrong path only
    for (int i = 0; i < 6; ++i) {
        MemSpec m;
        m.regionBase = 0x30000000;
        m.regionSize = 1 << 16;
        m.kind = MemKind::Random;
        m.seed = 11 + i;
        b.addLoad(m, RegIndex(i));
    }
    b.endJump(head);
    b.beginBlock(); // taken path: no memory at all
    b.addFiller(8);
    b.endJump(head);
    Program p = b.finalize("wrong_path_loads");

    // Force mispredictions by making TAGE mispredict occasionally:
    // an always-taken branch trains perfectly, so instead drop the
    // BTB slot coverage by keeping the BTB tiny — fetch then runs
    // sequentially (into the load block) until decode/execute
    // recovers.
    SimConfig cfg = makeConfig(FrontendVariant::Dcf);
    cfg.btb.l0.entries = 1;
    cfg.btb.l0.assoc = 0;
    cfg.btb.l1.entries = 4;
    cfg.btb.l1.assoc = 4;
    cfg.btb.l2.entries = 8;
    cfg.btb.l2.assoc = 8;
    Core core(cfg, p);
    core.run(40000);
    // The committed path contains no memory instruction at all, so
    // every single L1D access is wrong-path pollution.
    EXPECT_GT(core.supply().wrongPathInsts(), 10u);
    EXPECT_GT(core.memory().l1d().accesses(), 0u);
}
