/**
 * @file
 * Streaming content hashing for cache keys and payload checksums.
 *
 * FNV-1a over 64 bits: simple, fast enough for megabyte payloads, and
 * — unlike std::hash — stable across standard libraries and process
 * runs, which an on-disk cache key must be. Not cryptographic; the
 * trace cache uses it to detect staleness and corruption, not to
 * resist adversaries.
 */

#ifndef ELFSIM_COMMON_HASH_HH
#define ELFSIM_COMMON_HASH_HH

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string_view>

namespace elfsim {

/** Incremental FNV-1a 64-bit hasher. */
class Fnv1a
{
  public:
    /** Fold a raw byte range into the hash. */
    Fnv1a &
    bytes(const void *data, std::size_t len)
    {
        const unsigned char *p = static_cast<const unsigned char *>(data);
        std::uint64_t x = state;
        for (std::size_t i = 0; i < len; ++i) {
            x ^= p[i];
            x *= prime;
        }
        state = x;
        return *this;
    }

    /** Fold one unsigned 64-bit value (endianness-independent). */
    Fnv1a &
    u64(std::uint64_t v)
    {
        unsigned char b[8];
        for (int i = 0; i < 8; ++i)
            b[i] = static_cast<unsigned char>(v >> (8 * i));
        return bytes(b, sizeof(b));
    }

    /** Fold a double by its bit pattern. */
    Fnv1a &
    f64(double v)
    {
        std::uint64_t bits;
        static_assert(sizeof(bits) == sizeof(v));
        std::memcpy(&bits, &v, sizeof(bits));
        return u64(bits);
    }

    /** Fold a string's characters (length included, so "ab"+"c" and
     *  "a"+"bc" hash differently). */
    Fnv1a &
    str(std::string_view s)
    {
        u64(s.size());
        return bytes(s.data(), s.size());
    }

    std::uint64_t value() const { return state; }

  private:
    static constexpr std::uint64_t offsetBasis = 0xcbf29ce484222325ull;
    static constexpr std::uint64_t prime = 0x100000001b3ull;

    std::uint64_t state = offsetBasis;
};

/** One-shot convenience: FNV-1a of a byte range. */
inline std::uint64_t
fnv1a(const void *data, std::size_t len)
{
    return Fnv1a().bytes(data, len).value();
}

} // namespace elfsim

#endif // ELFSIM_COMMON_HASH_HH
