/**
 * @file
 * Figure 2 equivalent: fetch-address generation timing as a function
 * of BTB content and branch type.
 *
 * Directed micro-programs force each scenario; the DCF is driven
 * standalone and the measured blocks-per-cycle / bubbles-per-block
 * are reported next to the bubble count the paper's Figure 2 implies.
 */

#include "bench_util.hh"
#include "bpred/predictor_bank.hh"
#include "btb/btb_builder.hh"
#include "frontend/dcf.hh"
#include "workload/oracle_stream.hh"
#include "workload/builders.hh"
#include "workload/program_builder.hh"

using namespace elfsim;

namespace {

/** Drive the retire stream through a builder to warm the BTB. */
void
warmBtb(const Program &p, MultiBtb &btb, PredictorBank &bank,
        SeqNum insts)
{
    BtbBuilder builder(p, btb);
    OracleStream os(p);
    for (SeqNum i = 1; i <= insts; ++i) {
        const OracleInst &oi = os.at(i);
        builder.retire(*oi.si, oi.taken, oi.nextPC);
        if (oi.si->isBranchInst()) {
            // Train direction/targets so predictions are stable.
            TagePrediction tp;
            IttagePrediction ip;
            if (oi.si->branch == BranchKind::CondDirect)
                tp = bank.tage().predictArch(oi.si->pc);
            if (isIndirect(oi.si->branch) &&
                oi.si->branch != BranchKind::Return)
                ip = bank.ittage().predictArch(oi.si->pc);
            bank.commitBranch(oi.si->pc, oi.si->branch, oi.taken,
                              oi.nextPC, tp, ip, true);
        }
        os.retireUpTo(i);
    }
    bank.resetSpecToArch();
}

/**
 * Measure average address-generation cost: cycles per FAQ block over
 * a window, after warmup. 1.0 = a block every cycle (no bubbles).
 */
double
cyclesPerBlock(const Program &p, bool warm, unsigned blocks = 400)
{
    MultiBtb btb;
    PredictorBank bank;
    Faq faq(8);
    DecoupledFetcher dcf(btb, bank, faq);
    if (warm)
        warmBtb(p, btb, bank, 3000);

    dcf.restart(p.entryPC(), 0);
    Cycle cycle = 0;
    // Warm the DCF's own structures (L0 BTB promotion).
    while (dcf.stats().blocks < 100 && cycle < 20000) {
        dcf.tick(++cycle);
        if (!faq.empty())
            faq.pop();
    }
    const Cycle c0 = cycle;
    const auto b0 = dcf.stats().blocks;
    while (dcf.stats().blocks < b0 + blocks && cycle < c0 + 100000) {
        dcf.tick(++cycle);
        if (!faq.empty())
            faq.pop();
    }
    return double(cycle - c0) / double(dcf.stats().blocks - b0);
}

Program
takenChain(unsigned blocks, unsigned len)
{
    return microTakenChain(blocks, len);
}

/**
 * Pure call/return ring (no conditionals): main calls f1, f1 calls
 * f2, both return — every block ends in a call, jump, or return, so
 * the measured bubbles isolate the RAS timing.
 */
Program
callReturnRing(unsigned)
{
    ProgramBuilder b;
    const auto b0 = b.beginBlock(); // main: call f1
    b.addFiller(3);
    b.endCall(2);
    b.beginBlock(); // loop back
    b.endJump(b0);
    b.beginBlock(); // f1: call f2
    b.addFiller(3);
    b.endCall(4);
    b.beginBlock(); // f1 epilogue
    b.addFiller(2);
    b.endReturn();
    b.beginBlock(); // f2
    b.addFiller(3);
    b.endReturn();
    return b.finalize("call_return_ring");
}

/** Ring through an indirect jump (L0 BTC / ITTAGE timing). */
Program
indirectRing(unsigned fanout)
{
    return microIndirect(fanout, IndirectKind::RoundRobin, 4);
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::Options opt = bench::parseOptions(argc, argv);
    bench::warnNoExport(opt, "this bench drives the DCF standalone "
                             "and produces no RunResults");
    bench::banner(
        "Figure 2 — Address generation timing vs. BTB content",
        "Cycles per generated fetch block (1.0 = no bubbles); paper "
        "bubble counts in brackets");

    struct Row
    {
        const char *name;
        const char *paper;
        double measured;
    };

    // A ring of small taken blocks: after L0 promotion, taken
    // branches should cost 0 bubbles (paper: L0 hit, 0 bubbles).
    const double l0Taken = cyclesPerBlock(takenChain(4, 6), true);

    // A ring too large for the 24-entry L0 but fitting the L1: each
    // taken block costs the BP2 resteer (paper: 1 bubble).
    const double l1Taken = cyclesPerBlock(takenChain(64, 6), true);

    // Far too large for L0/L1: L2 hits add the 3-cycle access (paper:
    // 1 bubble + 2 extra access cycles).
    const double l2Taken = cyclesPerBlock(takenChain(1024, 6), true);

    // Sequential code (16-inst entries): proxy fall-through correct,
    // no bubbles even on L1 hits.
    const double seq = cyclesPerBlock(microSequentialLoop(200, 64),
                                      true);

    // Returns via the RAS (paper: hidden behind an L0 BTB hit).
    const double rets = cyclesPerBlock(callReturnRing(8), true);

    // Indirect jumps: small fanout hits the 64-entry BTC.
    const double indL0 = cyclesPerBlock(indirectRing(2), true);

    // Cold BTB: pure sequential guessing, one block per cycle.
    const double miss = cyclesPerBlock(takenChain(64, 6), false);

    const Row rows[] = {
        {"seq. 16-inst entries (proxy fallthrough ok)", "[0]", seq},
        {"taken branches, L0 BTB hits", "[0]", l0Taken},
        {"taken branches, L1 BTB hits", "[1]", l1Taken},
        {"taken branches, L2 BTB hits", "[3]", l2Taken},
        {"returns via RAS (L0 BTB hits)", "[0]", rets},
        {"indirect via L0 BTC (L0 BTB hits)", "[0]", indL0},
        {"full BTB miss (sequential guess/cycle)", "[0]*", miss},
    };

    std::printf("%-46s %8s %10s\n", "scenario", "paper",
                "cyc/block");
    for (const Row &r : rows)
        std::printf("%-46s %8s %10.2f\n", r.name, r.paper, r.measured);
    std::printf("\n* BTB-miss blocks are sequential guesses; the cost "
                "appears later as a decode resteer.\n");
    return 0;
}
