/**
 * @file
 * Local worker-fleet process management: fork/exec `elfsimd --worker`
 * on ephemeral loopback ports and harvest the bound port from each
 * worker's startup banner. Shared by `elfsim-coord --spawn N` (the
 * single-host fleet convenience) and the distributed tests, which
 * need real worker *processes* — an in-process worker would share the
 * coordinator's TraceCache singleton and fake the one-compile-per-
 * fleet accounting.
 */

#ifndef ELFSIM_DIST_SPAWN_HH
#define ELFSIM_DIST_SPAWN_HH

#include <cstdint>
#include <string>
#include <vector>

#include <sys/types.h>

namespace elfsim {
namespace dist {

/** One spawned worker process. */
struct LocalWorker
{
    pid_t pid = -1;
    std::uint16_t port = 0;
    int outFd = -1; ///< read end of the worker's stdout pipe; held
                    ///< open so late worker printf()s never SIGPIPE
};

/**
 * Spawn @a count worker processes: `bin --worker --port 0 --jobs
 * <jobs> <extra_args...>`, each on its own ephemeral port, stderr
 * passed through. Blocks until every worker has printed its
 * "elfsimd listening on host:port" banner. Throws IoError when a
 * worker fails to launch (any already-spawned workers are stopped
 * first).
 */
std::vector<LocalWorker>
spawnLocalWorkers(const std::string &bin, std::size_t count,
                  unsigned jobs,
                  const std::vector<std::string> &extra_args = {});

/** SIGTERM each worker, wait briefly, SIGKILL stragglers. Safe on
 *  workers that already exited (or were killed by a test). */
void stopLocalWorkers(std::vector<LocalWorker> &workers);

} // namespace dist
} // namespace elfsim

#endif // ELFSIM_DIST_SPAWN_HH
